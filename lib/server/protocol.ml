(* The line-oriented wire protocol shared by the server and the client.

   Requests are single lines, keyword first (case-insensitive):

     SQL <statement>            execute one SQL statement
     PREPARE <name> <template>  register a parameterized template (?1..?N)
     EXEC <name> [arg ...]      run a template with SQL-quoted arguments
     BASE <name> <col:type ...> define a base relation (types int | str)
     QUERY <goal>               compile and evaluate a Datalog goal
     RULE <clause>              add a workspace rule
     BEGIN                      open an explicit write transaction
     BEGIN SNAPSHOT             open a snapshot-isolated read transaction
     COMMIT | ROLLBACK          close the open transaction (either kind)
     STATS                      this session's execution counters
     PING                       liveness probe
     QUIT                       close this connection
     SHUTDOWN                   stop the whole server

   Responses are a status line — "OK" with optional "key=value" fields,
   or "ERR <message>" — followed by zero or more body lines (a
   tab-separated header then rows, for row-producing requests), and
   always terminated by a line holding a single ".". A "." inside a body
   line is escaped by the row encoding, so the terminator is
   unambiguous. *)

type request =
  | Sql of string
  | Prepare of string * string
  | Exec of string * string list
  | Base of string * (string * Rdbms.Datatype.t) list
  | Query of string
  | Rule of string
  | Begin
  | Begin_snapshot
  | Commit
  | Rollback
  | Stats
  | Ping
  | Quit
  | Shutdown

let terminator = "."

(* ------------------------------------------------------------------ *)
(* Request parsing *)

let split_keyword line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

(* EXEC argument tokenizer: whitespace-separated words, with single
   quotes grouping (and '' inside quotes meaning one literal quote, the
   SQL convention). *)
let tokenize s =
  let n = String.length s in
  let out = ref [] and buf = Buffer.create 16 in
  let started = ref false in
  let flush_word () =
    if !started then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf;
      started := false
    end
  in
  let rec word i =
    if i >= n then (flush_word (); Ok ())
    else
      match s.[i] with
      | ' ' | '\t' -> flush_word (); word (i + 1)
      | '\'' -> started := true; quoted (i + 1)
      | c -> started := true; Buffer.add_char buf c; word (i + 1)
  and quoted i =
    if i >= n then Error "unterminated quoted argument"
    else if s.[i] = '\'' then
      if i + 1 < n && s.[i + 1] = '\'' then begin
        Buffer.add_char buf '\'';
        quoted (i + 2)
      end
      else word (i + 1)
    else begin
      Buffer.add_char buf s.[i];
      quoted (i + 1)
    end
  in
  match word 0 with Ok () -> Ok (List.rev !out) | Error _ as e -> e

let parse_request line =
  let line = String.trim line in
  let kw, rest = split_keyword line in
  let need what v = if v = "" then Error (what ^ " expects an argument") else Ok v in
  match String.uppercase_ascii kw with
  | "SQL" -> Result.map (fun s -> Sql s) (need "SQL" rest)
  | "PREPARE" -> (
      let name, template = split_keyword rest in
      if name = "" || template = "" then Error "PREPARE expects a name and a template"
      else Ok (Prepare (name, template)))
  | "EXEC" -> (
      let name, args = split_keyword rest in
      if name = "" then Error "EXEC expects a template name"
      else match tokenize args with
        | Ok toks -> Ok (Exec (name, toks))
        | Error _ as e -> e)
  | "BASE" -> (
      let name, cols = split_keyword rest in
      if name = "" || cols = "" then Error "BASE expects a name and col:type pairs"
      else
        let parse_col acc spec =
          match acc with
          | Error _ as e -> e
          | Ok cols -> (
              match String.split_on_char ':' spec with
              | [ col; ty ] -> (
                  match Rdbms.Datatype.of_string ty with
                  | Some t -> Ok ((col, t) :: cols)
                  | None -> Error (Printf.sprintf "unknown column type: %s" ty))
              | _ -> Error (Printf.sprintf "malformed column spec: %s (want col:type)" spec))
        in
        let specs =
          List.filter (fun s -> s <> "") (String.split_on_char ' ' cols)
        in
        (match List.fold_left parse_col (Ok []) specs with
        | Ok cols -> Ok (Base (name, List.rev cols))
        | Error _ as e -> e))
  | "QUERY" -> Result.map (fun s -> Query s) (need "QUERY" rest)
  | "RULE" -> Result.map (fun s -> Rule s) (need "RULE" rest)
  | "BEGIN" -> (
      match String.uppercase_ascii rest with
      | "" -> Ok Begin
      | "SNAPSHOT" -> Ok Begin_snapshot
      | _ -> Error "BEGIN takes no argument (or SNAPSHOT)")
  | "COMMIT" -> if rest = "" then Ok Commit else Error "COMMIT takes no argument"
  | "ROLLBACK" -> if rest = "" then Ok Rollback else Error "ROLLBACK takes no argument"
  | "STATS" -> Ok Stats
  | "PING" -> Ok Ping
  | "QUIT" -> Ok Quit
  | "SHUTDOWN" -> Ok Shutdown
  | "" -> Error "empty request"
  | other -> Error (Printf.sprintf "unknown request: %s" other)

(* ------------------------------------------------------------------ *)
(* Parameter substitution *)

(* An integer-looking argument becomes an SQL integer literal; anything
   else a quoted string. The substituted text is ordinary SQL, so
   repeated EXECs with the same arguments hit the engine's prepared-
   statement cache on the exact text. *)
let sql_literal arg =
  match int_of_string_opt arg with
  | Some n -> string_of_int n
  | None ->
      let buf = Buffer.create (String.length arg + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        arg;
      Buffer.add_char buf '\'';
      Buffer.contents buf

let substitute template args =
  let args = Array.of_list args in
  let n = String.length template in
  let buf = Buffer.create (n + 16) in
  let used = Array.make (Array.length args) false in
  let rec go i =
    if i >= n then Ok ()
    else if template.[i] = '?' && i + 1 < n && template.[i + 1] >= '1' && template.[i + 1] <= '9'
    then begin
      (* multi-digit placeholder indexes *)
      let j = ref (i + 1) in
      while !j < n && template.[!j] >= '0' && template.[!j] <= '9' do incr j done;
      let idx = int_of_string (String.sub template (i + 1) (!j - i - 1)) in
      if idx > Array.length args then
        Error (Printf.sprintf "placeholder ?%d but only %d arguments" idx (Array.length args))
      else begin
        used.(idx - 1) <- true;
        Buffer.add_string buf (sql_literal args.(idx - 1));
        go !j
      end
    end
    else begin
      Buffer.add_char buf template.[i];
      go (i + 1)
    end
  in
  match go 0 with
  | Error _ as e -> e
  | Ok () ->
      let rec unused i =
        if i >= Array.length used then None
        else if not used.(i) then Some (i + 1)
        else unused (i + 1)
      in
      (match unused 0 with
      | Some i -> Error (Printf.sprintf "argument %d not used by the template" i)
      | None -> Ok (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Response encoding *)

let status_ok fields =
  match fields with
  | [] -> "OK"
  | _ -> "OK " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) fields)

let status_err msg =
  (* the status must stay one line whatever the engine said *)
  let flat = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) msg in
  "ERR " ^ flat

(* Body lines are tab-separated fields with backslash, tab, newline and
   a leading "." escaped, so the "." terminator and the framing survive
   any value. *)
let encode_field s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let encode_line fields =
  let line = String.concat "\t" (List.map encode_field fields) in
  if line = terminator then "\\." else line

let decode_field s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '\\' && i + 1 < n then begin
        (match s.[i + 1] with
        | 't' -> Buffer.add_char buf '\t'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | c -> Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let decode_line line =
  if line = "\\." then [ terminator ]
  else List.map decode_field (String.split_on_char '\t' line)

let row_fields row = Array.to_list (Array.map Rdbms.Value.to_string row)
