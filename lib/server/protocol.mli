(** The line-oriented wire protocol shared by {!Server} and {!Client}.

    One request per line, keyword first; one response per request: a
    status line ([OK] with optional [key=value] fields, or
    [ERR <message>]), optional tab-separated body lines (header then
    rows), and a terminating ["."] line. See the implementation header
    for the full grammar. *)

type request =
  | Sql of string  (** [SQL <statement>] *)
  | Prepare of string * string  (** [PREPARE <name> <template with ?1..?N>] *)
  | Exec of string * string list  (** [EXEC <name> [arg ...]] *)
  | Base of string * (string * Rdbms.Datatype.t) list
      (** [BASE <name> <col:type ...>] — define a base relation and
          register it in the EDB dictionary (types [int] | [str]) *)
  | Query of string  (** [QUERY <goal>] — Datalog evaluation *)
  | Rule of string  (** [RULE <clause>] — add a workspace rule *)
  | Begin  (** [BEGIN] — explicit write transaction *)
  | Begin_snapshot  (** [BEGIN SNAPSHOT] — snapshot-isolated reads *)
  | Commit
  | Rollback
  | Stats  (** this session's counters *)
  | Ping
  | Quit
  | Shutdown

val parse_request : string -> (request, string) result

val terminator : string
(** ["."] — every response's final line. *)

val substitute : string -> string list -> (string, string) result
(** [substitute template args] replaces [?1]..[?N] with the arguments as
    SQL literals (integers bare, everything else quoted). Errors on a
    placeholder past the argument list or an argument no placeholder
    uses. *)

val sql_literal : string -> string
(** The SQL literal form substitution uses for one argument. *)

val status_ok : (string * string) list -> string
val status_err : string -> string

val encode_line : string list -> string
(** Tab-join fields, escaping tabs/newlines/backslashes and a bare ["."]
    so framing survives any value. *)

val decode_line : string -> string list
(** Inverse of {!encode_line}. *)

val row_fields : Rdbms.Tuple.t -> string list
(** A result row as displayable fields. *)
