(* A concurrent multi-session D/KB server: one engine, K sessions, a
   line-oriented wire protocol over TCP.

   The loop is single-threaded and cooperative — connections multiplex
   through [Unix.select], and each request runs to completion on the
   shared engine (statement-granularity atomicity). Two mechanisms keep
   sessions from trampling each other:

   - Writers serialize: the engine has one transaction slot, so while a
     connection holds an explicit BEGIN, other connections' writes (and
     Datalog queries, whose scratch-table churn would join the open
     transaction's undo log) are refused with "ERR busy". Plain SELECTs
     stay allowed.

   - Readers never wait: BEGIN SNAPSHOT pins a copy-on-write snapshot,
     and snapshot SELECTs are served even while another connection's
     long LFP derivation is running — the query pump drains them between
     LFP iterations (via the runtime's iteration observer), reading
     frozen relation versions the writer cannot perturb. *)

module Engine = Rdbms.Engine
module Session = Core.Session

type conn = {
  c_fd : Unix.file_descr;
  c_session : Session.t;
  c_inbuf : Buffer.t; (* bytes read but not yet forming a full line *)
  mutable c_pending : string list; (* complete request lines, oldest first *)
  c_prepared : (string, string) Hashtbl.t; (* PREPARE templates *)
  mutable c_snapshot : int option; (* open snapshot timestamp *)
  mutable c_open : bool;
}

type t = {
  s_listen : Unix.file_descr;
  s_port : int;
  s_engine : Engine.t;
  mutable s_conns : conn list;
  mutable s_writer : conn option; (* holder of the engine's write txn *)
  mutable s_active : conn option; (* conn whose request is executing *)
  mutable s_pumping : bool; (* inside the LFP pump: safe requests only *)
  mutable s_running : bool;
}

let port t = t.s_port
let engine t = t.s_engine

let create ?(host = "127.0.0.1") ?(port = 0) engine =
  (* a client dropping mid-response must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 16;
  let actual =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  {
    s_listen = fd;
    s_port = actual;
    s_engine = engine;
    s_conns = [];
    s_writer = None;
    s_active = None;
    s_pumping = false;
    s_running = true;
  }

(* ------------------------------------------------------------------ *)
(* Connection I/O *)

let send conn lines =
  let payload = String.concat "\n" lines ^ "\n" in
  let bytes = Bytes.of_string payload in
  let len = Bytes.length bytes in
  let rec write off =
    if off < len then
      match Unix.write conn.c_fd bytes off (len - off) with
      | n -> write (off + n)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          conn.c_open <- false
  in
  write 0

let respond conn status body = send conn ((status :: body) @ [ Protocol.terminator ])

let read_conn conn =
  let buf = Bytes.create 4096 in
  match Unix.read conn.c_fd buf 0 4096 with
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> conn.c_open <- false
  | 0 -> conn.c_open <- false
  | n ->
      Buffer.add_subbytes conn.c_inbuf buf 0 n;
      let data = Buffer.contents conn.c_inbuf in
      let rec split start acc =
        match String.index_from_opt data start '\n' with
        | None -> (acc, String.sub data start (String.length data - start))
        | Some i ->
            let line = String.sub data start (i - start) in
            let line =
              (* tolerate CRLF clients *)
              if line <> "" && line.[String.length line - 1] = '\r' then
                String.sub line 0 (String.length line - 1)
              else line
            in
            split (i + 1) (line :: acc)
      in
      let lines, rest = split 0 [] in
      Buffer.clear conn.c_inbuf;
      Buffer.add_string conn.c_inbuf rest;
      conn.c_pending <- conn.c_pending @ List.rev lines

(* ------------------------------------------------------------------ *)
(* Request execution *)

let first_keyword sql =
  let sql = String.trim sql in
  let i = ref 0 in
  let n = String.length sql in
  while
    !i < n
    && (match sql.[!i] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  do
    incr i
  done;
  let kw = String.uppercase_ascii (String.sub sql 0 !i) in
  if kw = "BEGIN" && String.uppercase_ascii sql = "BEGIN SNAPSHOT" then "BEGIN SNAPSHOT"
  else kw

let is_select sql = first_keyword sql = "SELECT"

let rows_response columns rows =
  ( Protocol.status_ok [ ("rows", string_of_int (List.length rows)) ],
    Protocol.encode_line columns :: List.map (fun r -> Protocol.encode_line (Protocol.row_fields r)) rows
  )

(* what a connection may run while another connection's LFP derivation
   is executing (the pump): requests that cannot touch live relations *)
let safe_during_query conn = function
  | Protocol.Ping | Protocol.Stats | Protocol.Begin_snapshot -> true
  | Protocol.Sql sql -> conn.c_snapshot <> None && is_select sql
  | Protocol.Exec _ -> conn.c_snapshot <> None (* resolved text re-checked below *)
  | Protocol.Commit | Protocol.Rollback -> conn.c_snapshot <> None
  | Protocol.Query _ | Protocol.Rule _ | Protocol.Prepare _ | Protocol.Base _
  | Protocol.Begin | Protocol.Quit | Protocol.Shutdown ->
      false

type action = Keep | Close | Stop

let engine_result conn = function
  | Ok (Engine.Rows { columns; rows }) ->
      let status, body = rows_response columns rows in
      respond conn status body
  | Ok (Engine.Affected n) ->
      respond conn (Protocol.status_ok [ ("affected", string_of_int n) ]) []
  | Ok Engine.Done -> respond conn (Protocol.status_ok []) []
  | Error msg -> respond conn (Protocol.status_err msg) []

let rec handle t conn req =
  match req with
  | Protocol.Ping ->
      respond conn (Protocol.status_ok []) [];
      Keep
  | Protocol.Stats ->
      let sid = string_of_int (Session.session_id conn.c_session) in
      respond conn
        (Protocol.status_ok [ ("sid", sid) ])
        [ Protocol.encode_line [ Rdbms.Stats.to_string (Session.db_stats conn.c_session) ] ];
      Keep
  | Protocol.Prepare (name, template) ->
      Hashtbl.replace conn.c_prepared name template;
      respond conn (Protocol.status_ok []) [];
      Keep
  | Protocol.Exec (name, args) -> (
      match Hashtbl.find_opt conn.c_prepared name with
      | None ->
          respond conn (Protocol.status_err (Printf.sprintf "no prepared template: %s" name)) [];
          Keep
      | Some template -> (
          match Protocol.substitute template args with
          | Error msg ->
              respond conn (Protocol.status_err msg) [];
              Keep
          | Ok sql -> handle t conn (Protocol.Sql sql)))
  | Protocol.Sql sql -> (
      match first_keyword sql with
      (* route transaction-control SQL through the protocol handlers so
         the writer gate always sees it *)
      | "BEGIN" -> handle t conn Protocol.Begin
      | "COMMIT" -> handle t conn Protocol.Commit
      | "ROLLBACK" -> handle t conn Protocol.Rollback
      | "BEGIN SNAPSHOT" -> handle t conn Protocol.Begin_snapshot
      | kw -> (
          match conn.c_snapshot with
          | Some ts ->
              if kw <> "SELECT" then begin
                respond conn
                  (Protocol.status_err "snapshot transactions are read-only: only SELECT is allowed")
                  [];
                Keep
              end
              else begin
                (match Session.snapshot_query conn.c_session ~ts sql with
                | Ok (columns, rows) ->
                    let status, body = rows_response columns rows in
                    respond conn status body
                | Error msg -> respond conn (Protocol.status_err msg) []);
                Keep
              end
          | None ->
              let blocked =
                kw <> "SELECT"
                &&
                match t.s_writer with Some w -> w != conn | None -> false
              in
              if blocked then begin
                respond conn
                  (Protocol.status_err "busy: another connection holds the write transaction")
                  [];
                Keep
              end
              else begin
                engine_result conn (Session.sql conn.c_session sql);
                Keep
              end))
  | Protocol.Begin ->
      if conn.c_snapshot <> None then begin
        respond conn
          (Protocol.status_err "a snapshot transaction is open; COMMIT or ROLLBACK it first")
          [];
        Keep
      end
      else if (match t.s_writer with Some w -> w != conn | None -> false) then begin
        respond conn
          (Protocol.status_err "busy: another connection holds the write transaction")
          [];
        Keep
      end
      else begin
        (match Session.sql conn.c_session "BEGIN" with
        | Ok _ ->
            t.s_writer <- Some conn;
            respond conn (Protocol.status_ok []) []
        | Error msg -> respond conn (Protocol.status_err msg) []);
        Keep
      end
  | Protocol.Begin_snapshot -> (
      match conn.c_snapshot with
      | Some _ ->
          respond conn (Protocol.status_err "a snapshot transaction is already open") [];
          Keep
      | None -> (
          match Session.begin_snapshot conn.c_session with
          | Ok ts ->
              conn.c_snapshot <- Some ts;
              respond conn (Protocol.status_ok [ ("ts", string_of_int ts) ]) [];
              Keep
          | Error msg ->
              respond conn (Protocol.status_err msg) [];
              Keep))
  | Protocol.Commit | Protocol.Rollback -> (
      match conn.c_snapshot with
      | Some ts ->
          conn.c_snapshot <- None;
          (match Session.end_snapshot conn.c_session ts with
          | Ok () -> respond conn (Protocol.status_ok [ ("released", string_of_int ts) ]) []
          | Error msg -> respond conn (Protocol.status_err msg) []);
          Keep
      | None ->
          let stmt = if req = Protocol.Commit then "COMMIT" else "ROLLBACK" in
          (match Session.sql conn.c_session stmt with
          | Ok _ ->
              (match t.s_writer with
              | Some w when w == conn -> t.s_writer <- None
              | _ -> ());
              respond conn (Protocol.status_ok []) []
          | Error msg -> respond conn (Protocol.status_err msg) []);
          Keep)
  | Protocol.Base (name, cols) ->
      if (match t.s_writer with Some w -> w != conn | None -> false) then begin
        respond conn
          (Protocol.status_err "busy: another connection holds the write transaction")
          [];
        Keep
      end
      else begin
        (match Session.define_base conn.c_session name cols () with
        | Ok () -> respond conn (Protocol.status_ok []) []
        | Error msg -> respond conn (Protocol.status_err msg) []);
        Keep
      end
  | Protocol.Rule text -> (
      match Session.add_rule conn.c_session text with
      | Ok () -> respond conn (Protocol.status_ok []) []
      | Error msg -> respond conn (Protocol.status_err msg) []);
      Keep
  | Protocol.Query goal ->
      if conn.c_snapshot <> None then begin
        respond conn
          (Protocol.status_err
             "snapshot transactions are read-only: QUERY evaluates against live state")
          [];
        Keep
      end
      else if t.s_writer <> None then begin
        (* LFP scratch-table churn would join the open transaction's undo
           log (even the holder's: a rolled-back BEGIN must not undo a
           query's internal bookkeeping) *)
        respond conn
          (Protocol.status_err "busy: a write transaction is open; COMMIT it before QUERY")
          [];
        Keep
      end
      else begin
        let pump _ip = pump_safe t in
        (match Session.query conn.c_session ~on_iteration:pump goal with
        | Ok answer ->
            let columns, rows = Session.answer_rows answer in
            let status, body = rows_response columns rows in
            respond conn status body
        | Error msg -> respond conn (Protocol.status_err msg) []);
        Keep
      end
  | Protocol.Quit ->
      respond conn (Protocol.status_ok []) [];
      Close
  | Protocol.Shutdown ->
      respond conn (Protocol.status_ok []) [];
      Stop

(* Serve a connection's queued requests. Inside the pump only requests
   that cannot observe (or perturb) the running derivation are drained;
   anything else stays queued for the main loop. *)
and drain t conn =
  let rec go () =
    if conn.c_open && t.s_running then
      match conn.c_pending with
      | [] -> ()
      | line :: rest -> (
          match Protocol.parse_request line with
          | Error msg ->
              conn.c_pending <- rest;
              respond conn (Protocol.status_err msg) [];
              go ()
          | Ok req ->
              if t.s_pumping && not (safe_during_query conn req) then ()
              else begin
                conn.c_pending <- rest;
                t.s_active <- Some conn;
                (match handle t conn req with
                | Keep -> ()
                | Close -> conn.c_open <- false
                | Stop -> t.s_running <- false);
                t.s_active <- None;
                go ()
              end)
  in
  go ()

(* Between LFP iterations: pick up whatever arrived on the wire and
   serve the snapshot-read traffic immediately — the writer's long
   derivation never blocks pinned readers. *)
and pump_safe t =
  if not t.s_pumping then begin
    t.s_pumping <- true;
    Fun.protect
      ~finally:(fun () -> t.s_pumping <- false)
      (fun () ->
        poll t 0.0;
        List.iter
          (fun c ->
            match t.s_active with
            | Some active when active == c -> () (* the querying conn itself *)
            | _ ->
                let saved = t.s_active in
                drain t c;
                t.s_active <- saved)
          t.s_conns)
  end

and poll t timeout =
  let fds = t.s_listen :: List.map (fun c -> c.c_fd) t.s_conns in
  match Unix.select fds [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, _, _ ->
      if List.mem t.s_listen readable then accept_conn t;
      List.iter (fun c -> if List.mem c.c_fd readable then read_conn c) t.s_conns

and accept_conn t =
  match Unix.accept t.s_listen with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd, _ ->
      let conn =
        {
          c_fd = fd;
          c_session = Session.of_engine t.s_engine;
          c_inbuf = Buffer.create 256;
          c_pending = [];
          c_prepared = Hashtbl.create 8;
          c_snapshot = None;
          c_open = true;
        }
      in
      t.s_conns <- t.s_conns @ [ conn ]

(* ------------------------------------------------------------------ *)
(* Main loop *)

let cleanup t =
  let closed, live = List.partition (fun c -> not c.c_open) t.s_conns in
  t.s_conns <- live;
  List.iter
    (fun c ->
      (* a dropped connection must not leak its transaction or pin its
         snapshot's versions forever *)
      (match t.s_writer with
      | Some w when w == c ->
          (try ignore (Session.sql c.c_session "ROLLBACK") with _ -> ());
          t.s_writer <- None
      | _ -> ());
      (match c.c_snapshot with
      | Some ts ->
          c.c_snapshot <- None;
          ignore (Session.end_snapshot c.c_session ts)
      | None -> ());
      try Unix.close c.c_fd with Unix.Unix_error _ -> ())
    closed

(* cleanup runs between poll and drain so a disconnected writer's
   transaction is rolled back before other connections' queued requests
   hit the busy gate *)
let step t ~timeout =
  poll t timeout;
  cleanup t;
  List.iter (fun c -> drain t c) t.s_conns

let run t =
  while t.s_running do
    step t ~timeout:0.2
  done;
  List.iter (fun c -> c.c_open <- false) t.s_conns;
  cleanup t;
  (try Unix.close t.s_listen with Unix.Unix_error _ -> ())

let stop t = t.s_running <- false
let connections t = List.length t.s_conns
