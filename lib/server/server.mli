(** The multi-session D/KB server: one shared {!Rdbms.Engine}, one
    {!Core.Session} per TCP connection, the {!Protocol} wire grammar.

    The loop is single-threaded and cooperative ([Unix.select]); each
    request runs to completion (statement-granularity atomicity).
    Explicit write transactions serialize — a second connection's write
    while one holds BEGIN gets ["ERR busy"] — while snapshot readers
    never wait: snapshot SELECTs are served even during another
    connection's LFP derivation, drained between iterations against
    frozen copy-on-write relation versions. *)

type t

val create : ?host:string -> ?port:int -> Rdbms.Engine.t -> t
(** Bind and listen. [port] 0 (the default) picks an ephemeral port —
    read it back with {!port}. The engine outlives the server; sessions
    are created per connection. *)

val port : t -> int
val engine : t -> Rdbms.Engine.t

val run : t -> unit
(** Serve until a client sends [SHUTDOWN] (or {!stop} is called from a
    signal/other thread), then close every connection and the listening
    socket. *)

val step : t -> timeout:float -> unit
(** One poll-and-serve round (embedding the loop elsewhere). *)

val stop : t -> unit
(** Make {!run} return after the current round. *)

val connections : t -> int
