(* Latency percentiles over raw wall-clock samples: one shared
   implementation for every bench JSON emitter, so "p95" means the same
   thing in BENCH_server.json as everywhere else. *)

let sorted samples = List.sort compare samples

(* nearest-rank on the sorted samples: the smallest value with at least
   p% of the distribution at or below it *)
let percentile p samples =
  match sorted samples with
  | [] -> 0.0
  | xs ->
      let n = List.length xs in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      let idx = min (n - 1) (max 0 (rank - 1)) in
      List.nth xs idx

(* classical median: averages the two middle samples for even n *)
let median samples =
  match sorted samples with
  | [] -> 0.0
  | xs ->
      let n = List.length xs in
      if n mod 2 = 1 then List.nth xs (n / 2)
      else (List.nth xs ((n / 2) - 1) +. List.nth xs (n / 2)) /. 2.0

type summary = {
  n : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

let summarize samples =
  match sorted samples with
  | [] -> { n = 0; mean_ms = 0.0; p50_ms = 0.0; p95_ms = 0.0; p99_ms = 0.0; max_ms = 0.0 }
  | xs ->
      let n = List.length xs in
      {
        n;
        mean_ms = List.fold_left ( +. ) 0.0 xs /. float_of_int n;
        p50_ms = percentile 50.0 xs;
        p95_ms = percentile 95.0 xs;
        p99_ms = percentile 99.0 xs;
        max_ms = List.nth xs (n - 1);
      }

let json s =
  Printf.sprintf
    {|{ "n": %d, "mean_ms": %.4f, "p50_ms": %.4f, "p95_ms": %.4f, "p99_ms": %.4f, "max_ms": %.4f }|}
    s.n s.mean_ms s.p50_ms s.p95_ms s.p99_ms s.max_ms
