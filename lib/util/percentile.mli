(** Latency percentiles over raw wall-clock samples — the shared helper
    behind every bench JSON emitter's latency numbers. *)

val percentile : float -> float list -> float
(** [percentile p samples] — nearest-rank percentile ([p] in 0..100):
    the smallest sample with at least [p]%% of the distribution at or
    below it. 0.0 on an empty list. *)

val median : float list -> float
(** Classical median (averages the two middle samples for even [n]). *)

type summary = {
  n : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

val summarize : float list -> summary

val json : summary -> string
(** One JSON object literal:
    [{ "n": …, "mean_ms": …, "p50_ms": …, "p95_ms": …, "p99_ms": …, "max_ms": … }]. *)
