#!/bin/sh
# One-command CI gate: build everything, run the full test suite, then
# smoke the two JSON-emitting ablation benches at quick scale.
# Run from the repository root:  sh scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest

echo "== bench smoke (quick scale) =="
dune exec bench/main.exe -- wal cache quick

echo "== ci OK =="
