#!/bin/sh
# One-command CI gate: build everything, run the full test suite, smoke
# the JSON-emitting benches at quick scale, then drive the shell's
# observability commands end to end and check the trace sink's JSONL.
# Run from the repository root:  sh scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest

echo "== tests (per-statement sanitizer on) =="
# --force: dune caches passing tests; the env var must actually reach them
DKB_SANITIZE=1 dune runtest --force

echo "== lint gate =="
# every shipped script must be diagnostics-clean (exit 0, no output)
LINT_OUT=$(dune exec bin/dkb.exe -- check \
  examples/scripts/*.dkb \
  test/cram/shell_session.dkb test/cram/policy_session.dkb \
  test/cram/txn_session.dkb test/cram/txn_recover.dkb) \
  || { echo "lint gate: error-class diagnostics"; echo "$LINT_OUT"; exit 1; }
[ -z "$LINT_OUT" ] || { echo "lint gate: shipped scripts must be diagnostics-clean"; echo "$LINT_OUT"; exit 1; }
# the seeded-defect fixture must be rejected (non-zero exit)
if dune exec bin/dkb.exe -- check test/cram/lint_defects.dkb > /dev/null 2>&1; then
  echo "lint gate: seeded defects were not flagged"; exit 1
fi
echo "lint gate OK"

echo "== bench smoke (quick scale) =="
dune exec bench/main.exe -- wal cache profile joins exec updates storage server quick
test -s BENCH_profile.json || { echo "BENCH_profile.json missing/empty"; exit 1; }
test -s BENCH_joins.json || { echo "BENCH_joins.json missing/empty"; exit 1; }
test -s BENCH_exec.json || { echo "BENCH_exec.json missing/empty"; exit 1; }
test -s BENCH_updates.json || { echo "BENCH_updates.json missing/empty"; exit 1; }
test -s BENCH_storage.json || { echo "BENCH_storage.json missing/empty"; exit 1; }
test -s BENCH_server.json || { echo "BENCH_server.json missing/empty"; exit 1; }

# paged storage: the cold skewed join's measured page_reads must land
# within 2x of the planner's cost estimate, and the dataset (4x the
# buffer pool) must still complete with correct answers
grep -q '"gate_cold_within_2x": true' BENCH_storage.json \
  || { echo "storage bench: measured cold page_reads not within 2x of cost estimate"; exit 1; }
grep -q '"gate_capacity_4x": true' BENCH_storage.json \
  || { echo "storage bench: dataset 4x the pool did not complete correctly"; exit 1; }
grep -q '"gate_lfp_answers": true' BENCH_storage.json \
  || { echo "storage bench: disk-backed LFP answers diverged from in-memory"; exit 1; }
echo "storage bench OK"

# the cost-based planner must not regress against greedy by more than 10%
# on the skewed 3-way join (and the LFP delta feedback must have helped)
awk '
  /"skewed_3way"/ { in_skewed = 1 }
  in_skewed && /"mode": "greedy"/  { if (match($0, /"total_io": [0-9]+/)) greedy = substr($0, RSTART + 12, RLENGTH - 12) }
  in_skewed && /"mode": "costed"/  { if (match($0, /"total_io": [0-9]+/)) costed = substr($0, RSTART + 12, RLENGTH - 12); in_skewed = 0 }
  /"improved": true/ { improved = 1 }
  END {
    if (greedy == "" || costed == "") { print "BENCH_joins.json missing measures"; exit 1 }
    if (costed + 0 > greedy * 1.10) { print "costed planner regressed vs greedy: " costed " > 1.10 * " greedy; exit 1 }
    if (!improved) { print "LFP delta feedback did not improve inner-loop I/O"; exit 1 }
    print "joins bench OK: costed=" costed " greedy=" greedy
  }
' BENCH_joins.json

# the compiled backend must agree with the interpreter and must not be
# slower on the end-to-end magic-sets LFP (the >= 3x headline is asserted
# at full scale; quick scale just gates "never slower")
awk '
  /"lfp_magic"/ { in_lfp = 1 }
  in_lfp && /"interpreted_ms"/ { if (match($0, /[0-9]+\.[0-9]+/)) interp = substr($0, RSTART, RLENGTH) }
  in_lfp && /"compiled_ms"/    { if (match($0, /[0-9]+\.[0-9]+/)) compiled = substr($0, RSTART, RLENGTH) }
  END {
    if (interp == "" || compiled == "") { print "BENCH_exec.json missing measures"; exit 1 }
    if (compiled + 0 > interp + 0) { print "compiled backend slower than interpreted: " compiled " > " interp; exit 1 }
    print "exec bench OK: compiled=" compiled "ms interpreted=" interp "ms"
  }
' BENCH_exec.json

# maintained views must stay tuple-identical to a from-scratch LFP, every
# single-edge delta must propagate incrementally, and maintenance must not
# be slower than full re-evaluation (the >= 5x headline on the recursive
# scenarios is asserted at full scale; quick scale gates "never slower")
awk '
  /"name"/ {
    ok = index($0, "\"ok\": true") > 0
    if (!ok) { print "updates bench: differential check failed: " $0; bad = 1 }
    if (match($0, /"incremental_ms": [0-9.]+/)) incr = substr($0, RSTART + 18, RLENGTH - 18)
    if (match($0, /"recompute_ms": [0-9.]+/)) recomp = substr($0, RSTART + 16, RLENGTH - 16)
    if (match($0, /"fallbacks": [0-9]+/)) fb = substr($0, RSTART + 13, RLENGTH - 13)
    if (incr == "" || recomp == "") { print "updates bench: missing measures: " $0; bad = 1 }
    else if (incr + 0 > recomp + 0) { print "updates bench: incremental slower than recompute: " incr " > " recomp; bad = 1 }
    if (fb + 0 > 0) { print "updates bench: single-edge deltas fell back " fb " times"; bad = 1 }
    n += 1
  }
  END {
    if (n < 3) { print "updates bench: expected 3 scenarios, saw " n; exit 1 }
    if (bad) exit 1
    print "updates bench OK: " n " scenarios maintained incrementally"
  }
' BENCH_updates.json

# the concurrent server: 8-client aggregate throughput must be at least
# 2x the single-client baseline, a snapshot reader's p95 latency under a
# churning LFP writer must stay within 3x of idle, and every pinned read
# must have seen the exact snapshot state
awk '
  /"multi_client"/ { sect = "multi" }
  /"interference"/ { sect = "intf" }
  sect == "multi" && /"met"/ { multi_met = index($0, "\"met\": true") > 0 }
  sect == "intf" && /"met"/ {
    intf_met = index($0, "\"met\": true") > 0
    consistent = index($0, "\"consistent\": true") > 0
  }
  END {
    if (!multi_met) { print "server bench: multi-client scaling gate failed"; exit 1 }
    if (!intf_met) { print "server bench: reader/writer interference gate failed"; exit 1 }
    if (!consistent) { print "server bench: snapshot reads were not consistent"; exit 1 }
    print "server bench OK: scaling and interference gates met"
  }
' BENCH_server.json

echo "== server smoke (dkbd + concurrent dkbc clients) =="
DLOG=$(mktemp /tmp/dkb_ci_dkbd.XXXXXX)
SEED=$(mktemp /tmp/dkb_ci_seed.XXXXXX)
C1=$(mktemp /tmp/dkb_ci_c1.XXXXXX)
C2=$(mktemp /tmp/dkb_ci_c2.XXXXXX)
trap 'rm -f "$DLOG" "$SEED" "$C1" "$C2"' EXIT

echo "CREATE TABLE acct (id integer, bal integer); INSERT INTO acct VALUES (1, 10), (2, 20), (3, 30)" > "$SEED"
./_build/default/bin/dkbd.exe --port 0 --script "$SEED" > "$DLOG" 2>&1 &
DKBD=$!
PORT=""
i=0
while [ $i -lt 100 ]; do
  PORT=$(sed -n 's/^dkbd listening on \([0-9][0-9]*\)$/\1/p' "$DLOG")
  [ -n "$PORT" ] && break
  i=$((i + 1))
  sleep 0.1
done
[ -n "$PORT" ] || { echo "dkbd did not start"; cat "$DLOG"; exit 1; }
# two clients at once: one defines a base and runs a derivation, the
# other holds a snapshot over the seeded table
printf 'BASE parent p:str c:str\nSQL INSERT INTO parent VALUES (%s), (%s)\nRULE anc(X,Y) :- parent(X,Y).\nRULE anc(X,Y) :- parent(X,Z), anc(Z,Y).\nQUERY anc(a, W)\nQUIT\n' \
  "'a', 'b'" "'b', 'c'" | ./_build/default/bin/dkbc.exe --port "$PORT" > "$C1" &
P1=$!
printf 'PING\nBEGIN SNAPSHOT\nSQL SELECT COUNT(*) FROM acct\nCOMMIT\nQUIT\n' \
  | ./_build/default/bin/dkbc.exe --port "$PORT" > "$C2" &
P2=$!
wait $P1 || { echo "client 1 transport failure"; cat "$C1"; exit 1; }
wait $P2 || { echo "client 2 transport failure"; cat "$C2"; exit 1; }
grep -q "^OK rows=2$" "$C1" || { echo "derivation over the wire failed"; cat "$C1"; exit 1; }
grep -q "^3$" "$C2" || { echo "snapshot count over the wire failed"; cat "$C2"; exit 1; }
if grep -q "^ERR" "$C1" "$C2"; then echo "server smoke: unexpected ERR"; cat "$C1" "$C2"; exit 1; fi
printf 'SHUTDOWN\n' | ./_build/default/bin/dkbc.exe --port "$PORT" > /dev/null
wait $DKBD || { echo "dkbd did not shut down cleanly"; exit 1; }
echo "server smoke OK: port $PORT, 2 concurrent clients, clean shutdown"

echo "== shell observability smoke =="
TRACE=$(mktemp /tmp/dkb_ci_trace.XXXXXX)
SCRIPT=$(mktemp /tmp/dkb_ci_script.XXXXXX)
OUT=$(mktemp /tmp/dkb_ci_out.XXXXXX)
trap 'rm -f "$TRACE" "$SCRIPT" "$OUT" "$DLOG" "$SEED" "$C1" "$C2"' EXIT
: > "$TRACE"
cat > "$SCRIPT" <<EOF
.base parent(par int, child int)
.index parent(par)
.index parent(child)
.sql INSERT INTO parent VALUES (1, 2), (1, 3), (2, 4), (2, 5), (3, 6), (3, 7)
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
.trace on $TRACE
.analyze SELECT p.par, q.child FROM parent p, parent q WHERE p.child = q.par
?- ancestor(1, W).
.profile ancestor(1, W)
.analyze CREATE TABLE should_be_rejected (x int)
?- nosuchpred(X).
.store
.materialize ancestor
.insert parent(7, 8)
.delete parent(7, 8)
.trace off
.quit
EOF
dune exec bin/dkb.exe -- "$SCRIPT" > "$OUT" 2>&1

grep -q "Total: reads=" "$OUT" || { echo ".analyze produced no totals"; cat "$OUT"; exit 1; }
# the two deliberate errors must be reported, not crash the shell
grep -qi "error" "$OUT" || { echo "error paths not reported"; cat "$OUT"; exit 1; }

test -s "$TRACE" || { echo "trace sink is empty"; exit 1; }
# every line is one JSON object with an "ev" tag
BAD=$(grep -cv '^{"ev":".*}$' "$TRACE" || true)
[ "$BAD" -eq 0 ] || { echo "$BAD malformed trace lines"; exit 1; }
grep -q '"ev":"iteration"' "$TRACE" || { echo "no iteration events"; exit 1; }
grep -q '"ev":"stmt_end"' "$TRACE" || { echo "no stmt_end events"; exit 1; }
grep -q '"ev":"query_begin"' "$TRACE" || { echo "no query_begin events"; exit 1; }
grep -q '"ev":"maint".*"maintained":true' "$TRACE" || { echo "no maintained maint events"; exit 1; }
echo "trace sink OK: $(wc -l < "$TRACE") events"

echo "== ci OK =="
