Batch lint: `dkb check` flags every diagnostic class with a stable code
and a line:col position, and exits non-zero when any error-class
diagnostic is present.

  $ ../../bin/dkb.exe check lint_defects.dkb
  lint_defects.dkb:4:1: error[E101] unsafe rule: head variable Y not bound in a positive body literal: unsafe(X, Y) :- edge(X, X).
  lint_defects.dkb:5:1: error[E102] unstratified negation: strat depends negatively on strat inside the recursive cycle strat -> strat
  lint_defects.dkb:6:1: error[E103] edge used with arity 1 but the base relation declaration has arity 2
  lint_defects.dkb:17:10: error[E100] expected ) after atom arguments (found :-)
  lint_defects.dkb:4:1: warning[W207] singleton variable Y (prefix with _ if intentional)
  lint_defects.dkb:7:1: warning[W201] rule for dead is dead: ghost can never hold a tuple (no facts, base relation, or productive rules)
  lint_defects.dkb:8:1: warning[W202] rule for island is unreachable from the query roots (arity, cart, dead, dup, gen, rec, single, strat, unsafe)
  lint_defects.dkb:9:1: warning[W203] isl2 is defined but never referenced in a body or queried
  lint_defects.dkb:11:1: warning[W204] duplicate of the rule at 10:1
  lint_defects.dkb:13:1: warning[W205] subsumed by the more general rule at 12:1
  lint_defects.dkb:14:1: warning[W206] body is a cartesian product: {edge(Y, Y)} shares no variables with {edge(X, X)}
  lint_defects.dkb:15:1: warning[W207] singleton variable Y (prefix with _ if intentional)
  lint_defects.dkb:16:1: warning[W201] rule for rec is dead: rec can never hold a tuple (no facts, base relation, or productive rules)
  lint_defects.dkb:16:1: warning[W208] no binding can propagate into the recursive call rec(Y): magic sets would materialize all of rec
  [1]

  $ ../../bin/dkb.exe check lint_typeconf.dkb
  lint_typeconf.dkb:5:1: error[E104] conf(X) :- num(X), name(X).: variable X used both as integer and char
  [1]

The shipped session scripts are diagnostics-clean (no output, exit 0).

  $ ../../bin/dkb.exe check shell_session.dkb policy_session.dkb txn_session.dkb txn_recover.dkb
