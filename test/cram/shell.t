The testbed shell runs a whole session from a script. Timing values are
masked (they vary run to run); everything else is deterministic.

  $ ../../bin/dkb.exe shell_session.dkb | grep -v 't_c=' | sed -E 's/in [0-9.]+ ms/in X ms/'
  base relation parent defined
  ok
  w
  mary
  alice
  (2 rows)
  no
  options: magic=on strategy=semi-naive indexderived=false joinorder=syntactic exec=compiled maintenance=auto sanitize=false cache=false
  w
  mary
  alice
  (2 rows)
  stored 2 rules in X ms (2 reachability pairs)
  workspace cleared
  w
  alice
  (1 rows)
  workspace (0 rules, 0 facts):
  stored (2 rules):
    ancestor(X, Y) :- parent(X, Y).
    ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
    edb_columns               2 rows  (tablename char, colnumber integer, colname char, coltype char)
    edb_tables                1 rows  (tablename char, arity integer)
    idb_columns               2 rows  (tablename char, colnumber integer, coltype char)
    idb_tables                1 rows  (tablename char, arity integer)
    matviews                  0 rows  (predname char, strategy char)
    parent                    2 rows  (par char, child char)
    reachablepreds            2 rows  (frompredname char, topredname char)
    rulesource                2 rows  (ruleid integer, headpredname char, ruletext char)
  materialized ancestor (dred)
    ancestor             dred
  base +1/-0  ancestor +3/-0  [maintained]
  w
  mary
  alice
  bob
  (3 rows)
  base +0/-1  ancestor +0/-3  [maintained]
  w
  (0 rows)
  options: magic=on strategy=semi-naive indexderived=false joinorder=syntactic exec=compiled maintenance=off sanitize=false cache=false
