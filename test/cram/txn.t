Transactions, the write-ahead log, and crash recovery driven through the
shell. Timing values are masked (they vary run to run).

  $ ../../bin/dkb.exe txn_session.dkb | grep -v 't_c=' | sed -E 's/in [0-9.]+ ms/in X ms/'
  wal attached: txn_test.wal
  base relation parent defined
  ok
  ok
  count
  2
  (1 rows)
  ok
  ok
  count
  3
  (1 rows)
  stored 2 rules in X ms (2 reachability pairs)
  w
  mary
  sue
  ann
  (3 rows)
  checkpoint written to txn_test.db
  reads=61 writes=50 probes=27 rows_read=80 ins=33 del=12 create=12 drop=4 trunc=9 stmts=105 prepared=52 cache_hits=33 cache_misses=53 commits=2 rollbacks=1 wal_records=9 wal_bytes=931 recoveries=0 analyzed=0 card_replans=0 maint_ins=0 maint_del=0 maint_rederived=0 maint_fallbacks=0 snapshots=0 snapshot_queries=0 versions_captured=0

A "fresh process" rebuilds the same D/KB from the checkpoint plus the
records logged after it (the rolled-back transaction was never logged):

  $ ../../bin/dkb.exe txn_recover.dkb | grep -v 't_c='
  error: no WAL attached (.wal <file> first)
  recovered from txn_test.db + txn_test.wal (1 records replayed)
  count
  4
  (1 rows)
  w
  mary
  sue
  ann
  eve
  (4 rows)
