(* Tests for built-in comparison literals in rule bodies (X <> Y, N < 10):
   parsing, safety, type checking, SQL generation, and end-to-end
   evaluation under every strategy including magic sets and top-down. *)

module Session = Core.Session
module A = Datalog.Ast
module P = Datalog.Parser
module V = Rdbms.Value
module D = Rdbms.Datatype

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

(* ---------------- parsing ---------------- *)

let test_parse_forms () =
  let c = P.parse_clause "p(X, Y) :- e(X, Y), X <> Y, Y < 10, X >= 2, john <> X." in
  (match c.A.body with
  | [ A.Pos _; A.Cmp (A.Var "X", A.C_neq, A.Var "Y");
      A.Cmp (A.Var "Y", A.C_lt, A.Const (V.Int 10));
      A.Cmp (A.Var "X", A.C_ge, A.Const (V.Int 2));
      A.Cmp (A.Const (V.Str "john"), A.C_neq, A.Var "X") ] -> ()
  | _ -> Alcotest.fail "wrong body shapes");
  (* pretty / reparse roundtrip *)
  let text = A.clause_to_string c in
  Alcotest.(check bool) "roundtrip" true (A.equal_clause c (P.parse_clause text))

let test_parse_errors () =
  let fails s =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %S" s)
      true
      (try
         ignore (P.parse_clause s);
         false
       with P.Parse_error _ -> true)
  in
  fails "p(X) :- X.";
  fails "p(X) :- 5.";
  fails "p(X) :- X <.";
  fails "p(X) :- < X."

(* ---------------- safety and types ---------------- *)

let test_safety () =
  (* comparison variables must be positively bound *)
  Alcotest.(check bool) "unbound comparison var" true
    (Result.is_error (Datalog.Typecheck.check_safety (P.parse_clause "p(X) :- e(X, Y), X < Z.")));
  Alcotest.(check bool) "bound is fine" true
    (Datalog.Typecheck.check_safety (P.parse_clause "p(X) :- e(X, Y), X < Y.") = Ok ())

let test_types () =
  let base = function
    | "e" -> Some [ D.TInt; D.TInt ]
    | "lbl" -> Some [ D.TStr ]
    | _ -> None
  in
  let infer rules =
    Datalog.Typecheck.infer ~base ~rules:(List.map P.parse_clause rules)
  in
  Alcotest.(check bool) "int comparison ok" true
    (Result.is_ok (infer [ "p(X) :- e(X, Y), X < Y." ]));
  Alcotest.(check bool) "int vs string rejected" true
    (Result.is_error (infer [ "p(X) :- e(X, Y), X < banana." ]));
  Alcotest.(check bool) "string comparison ok" true
    (Result.is_ok (infer [ "q(S) :- lbl(S), S <> banana." ]))

(* ---------------- SQL generation ---------------- *)

let test_sqlgen () =
  let columns = function
    | "e" -> [ "src"; "dst" ]
    | _ -> [ "c1"; "c2" ]
  in
  let sql s =
    Rdbms.Sql_printer.query
      (Datalog.Sqlgen.select_for_rule ~columns (P.parse_clause s))
  in
  Alcotest.(check string) "var-var comparison"
    "SELECT DISTINCT t1.src AS c1 FROM e t1 WHERE t1.src <> t1.dst"
    (sql "selfless(X) :- e(X, Y), X <> Y.");
  Alcotest.(check string) "var-const comparison"
    "SELECT DISTINCT t1.src AS c1, t1.dst AS c2 FROM e t1 WHERE t1.dst < 10"
    (sql "small(X, Y) :- e(X, Y), Y < 10.")

(* ---------------- end to end ---------------- *)

let siblings_session () =
  let s = Session.create () in
  ok (Session.define_base s "parent" [ ("p", D.TStr); ("c", D.TStr) ] ~indexes:[ "p" ] ());
  ignore
    (ok
       (Session.add_facts s "parent"
          (List.map
             (fun (a, b) -> [ V.Str a; V.Str b ])
             [ ("ann", "bob"); ("ann", "cho"); ("ann", "dan"); ("eve", "fay") ])));
  ok (Session.load_rules s "sibling(X, Y) :- parent(P, X), parent(P, Y), X <> Y.");
  s

let test_siblings () =
  let s = siblings_session () in
  let a = ok (Session.query s "sibling(bob, W)") in
  let got =
    List.map (fun r -> V.to_string r.(0)) a.Session.run.Core.Runtime.rows |> List.sort compare
  in
  Alcotest.(check (list string)) "no self pair" [ "cho"; "dan" ] got;
  (* only child has no siblings *)
  let b = ok (Session.query s "sibling(fay, W)") in
  Alcotest.(check int) "only child" 0 (List.length b.Session.run.Core.Runtime.rows)

let test_recursion_with_comparison_all_strategies () =
  (* bounded reachability: only pass through nodes below a threshold *)
  let s = Session.create () in
  ok (Session.define_base s "edge" [ ("src", D.TInt); ("dst", D.TInt) ] ~indexes:[ "src" ] ());
  ignore
    (ok
       (Session.add_facts s "edge"
          (Workload.Graphgen.to_rows [ (1, 2); (2, 3); (3, 4); (4, 5); (2, 20); (20, 6) ])));
  ok
    (Session.load_rules s
       {| low(X, Y) :- edge(X, Y), Y < 10.
          low(X, Y) :- edge(X, Z), Z < 10, low(Z, Y). |});
  let goal = A.atom "low" [ A.Const (V.Int 1); A.Var "W" ] in
  let run options =
    let a = ok (Session.query_goal s ~options goal) in
    List.map (fun r -> match r.(0) with V.Int n -> n | _ -> -1) a.Session.run.Core.Runtime.rows
    |> List.sort compare
  in
  let expected = [ 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "semi-naive" expected (run Session.default_options);
  Alcotest.(check (list int)) "naive" expected
    (run { Session.default_options with strategy = Core.Runtime.Naive });
  Alcotest.(check (list int)) "magic" expected
    (run { Session.default_options with optimize = Core.Compiler.Opt_on });
  Alcotest.(check (list int)) "supplementary" expected
    (run { Session.default_options with optimize = Core.Compiler.Opt_supplementary })

let test_topdown_with_comparisons () =
  let rules =
    List.map P.parse_clause
      [
        (* the comparison is written before its binder on purpose *)
        "t(X, Y) :- X <> Y, edge(X, Y).";
        "t(X, Y) :- edge(X, Z), t(Z, Y), X <> Y.";
      ]
  in
  let facts = function
    | "edge" -> [ [ V.Int 1; V.Int 2 ]; [ V.Int 2; V.Int 1 ]; [ V.Int 2; V.Int 3 ] ]
    | _ -> []
  in
  let got =
    (match
       Datalog.Topdown.solve ~facts ~is_base:(fun p -> p = "edge") ~rules
         ~goal:(A.atom "t" [ A.Const (V.Int 1); A.Var "W" ])
     with
    | Ok rows -> rows
    | Error e -> Alcotest.fail (Datalog.Topdown.error_to_string e))
    |> List.map (fun r -> match r.(1) with V.Int n -> n | _ -> -1)
    |> List.sort compare
  in
  (* 1 reaches 2 and 3 (and itself via the cycle, but X <> Y filters it) *)
  Alcotest.(check (list int)) "filtered closure" [ 2; 3 ] got

let test_comparison_in_shell_explain () =
  let s = siblings_session () in
  let text = ok (Session.explain s "sibling(bob, W)") in
  Alcotest.(check bool) "SQL contains the inequality" true
    (Astring.String.is_infix ~affix:"<>" text)

let () =
  Alcotest.run "comparisons"
    [
      ( "language",
        [
          Alcotest.test_case "parse forms" `Quick test_parse_forms;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "safety" `Quick test_safety;
          Alcotest.test_case "types" `Quick test_types;
          Alcotest.test_case "sql generation" `Quick test_sqlgen;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "siblings" `Quick test_siblings;
          Alcotest.test_case "recursive + all strategies" `Quick
            test_recursion_with_comparison_all_strategies;
          Alcotest.test_case "top-down deferral" `Quick test_topdown_with_comparisons;
          Alcotest.test_case "explain shows SQL" `Quick test_comparison_in_shell_explain;
        ] );
    ]
