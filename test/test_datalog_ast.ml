(* Tests for the Datalog AST, lexer/parser and pretty-printer, including
   a print/re-parse roundtrip property. *)

module A = Datalog.Ast
module P = Datalog.Parser
module V = Rdbms.Value

let clause_eq = Alcotest.testable (fun fmt c -> Format.pp_print_string fmt (A.clause_to_string c)) A.equal_clause

let test_parse_fact () =
  let c = P.parse_clause "parent(john, mary)." in
  Alcotest.(check bool) "is fact" true (A.is_fact c);
  Alcotest.check clause_eq "structure" (A.fact "parent" [ V.Str "john"; V.Str "mary" ]) c

let test_parse_rule () =
  let c = P.parse_clause "anc(X, Y) :- par(X, Z), anc(Z, Y)." in
  Alcotest.(check bool) "is rule" true (A.is_rule c);
  Alcotest.(check string) "head" "anc" (A.head_pred c);
  Alcotest.(check (list (pair string bool))) "body preds"
    [ ("par", true); ("anc", true) ]
    (A.body_preds c)

let test_parse_negation () =
  let c = P.parse_clause "only(X) :- node(X), not bad(X)." in
  Alcotest.(check (list (pair string bool))) "polarity"
    [ ("node", true); ("bad", false) ]
    (A.body_preds c);
  (* prolog-style spelling *)
  let c2 = P.parse_clause {|only(X) :- node(X), \+ bad(X).|} in
  Alcotest.check clause_eq "\\+ is not" c c2

let test_parse_terms () =
  let c = P.parse_clause "p(X, 42, john, \"Mixed Case\")." in
  match c.A.head.A.args with
  | [ A.Var "X"; A.Const (V.Int 42); A.Const (V.Str "john"); A.Const (V.Str "Mixed Case") ] -> ()
  | _ -> Alcotest.fail "wrong terms"

let test_parse_arrow_variant () =
  let a = P.parse_clause "p(X) :- q(X)." in
  let b = P.parse_clause "p(X) <- q(X)." in
  Alcotest.check clause_eq "<- equals :-" a b

let test_parse_program () =
  let items =
    P.parse_program
      {| % a comment
         parent(a, b).
         anc(X, Y) :- parent(X, Y).
         ?- anc(a, W). |}
  in
  match items with
  | [ P.Clause _; P.Clause _; P.Query goal ] ->
      Alcotest.(check string) "goal pred" "anc" goal.A.pred
  | _ -> Alcotest.fail "wrong item shapes"

let test_parse_query () =
  let g = P.parse_query "?- anc(john, W)." in
  Alcotest.(check string) "pred" "anc" g.A.pred;
  let g2 = P.parse_query "anc(john, W)" in
  Alcotest.(check bool) "prefix optional" true (A.equal_atom g g2)

let test_parse_errors () =
  let fails s =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %S" s)
      true
      (try
         ignore (P.parse_clause s);
         false
       with P.Parse_error _ | Datalog.Lexer.Lex_error _ -> true)
  in
  fails "p(X";
  fails "p(X) :- .";
  fails "P(x).";
  fails "p(X) q(X).";
  fails "p(X) :- q(X) r(X).";
  fails "p(X). q(X)."

let test_vars_of () =
  let c = P.parse_clause "p(X, Y, X) :- q(Y, Z)." in
  Alcotest.(check (list string)) "head vars dedup ordered" [ "X"; "Y" ] (A.vars_of_atom c.A.head);
  Alcotest.(check (list string)) "clause vars" [ "X"; "Y"; "Z" ] (A.vars_of_clause c)

let test_ground_and_safety_shapes () =
  Alcotest.(check bool) "ground" true (A.is_ground (A.atom "p" [ A.Const (V.Int 1) ]));
  Alcotest.(check bool) "not ground" false (A.is_ground (A.atom "p" [ A.Var "X" ]));
  (* a non-ground bodiless clause is a rule (and will fail safety) *)
  let c = P.parse_clause "p(X)." in
  Alcotest.(check bool) "non-ground headless body is rule" true (A.is_rule c)

let test_pretty () =
  Alcotest.(check string) "fact" "parent(john, mary)."
    (A.clause_to_string (A.fact "parent" [ V.Str "john"; V.Str "mary" ]));
  let c = P.parse_clause "p(X, 1) :- q(X), not r(X)." in
  Alcotest.(check string) "rule" "p(X, 1) :- q(X), not r(X)." (A.clause_to_string c);
  (* odd strings print quoted *)
  Alcotest.(check string) "quoted const" "p(\"Hello World\")."
    (A.clause_to_string (A.fact "p" [ V.Str "Hello World" ]))

(* ---------------- roundtrip property ---------------- *)

let gen_pred = QCheck2.Gen.oneofl [ "p"; "q"; "r"; "edge"; "anc" ]
let gen_var = QCheck2.Gen.oneofl [ "X"; "Y"; "Z"; "W" ]

let gen_term =
  QCheck2.Gen.(
    oneof
      [
        map (fun v -> A.Var v) gen_var;
        map (fun n -> A.Const (V.Int n)) small_signed_int;
        map (fun s -> A.Const (V.Str s)) (oneofl [ "a"; "b"; "john"; "n1" ]);
      ])

let gen_atom =
  QCheck2.Gen.(map2 (fun p args -> A.atom p args) gen_pred (list_size (int_range 1 3) gen_term))

let gen_clause =
  QCheck2.Gen.(
    oneof
      [
        (* ground fact *)
        map2
          (fun p args -> A.fact p args)
          gen_pred
          (list_size (int_range 1 3)
             (oneof [ map (fun n -> V.Int n) small_signed_int; return (V.Str "a") ]));
        (* rule with positive and negated literals *)
        map2
          (fun head body -> A.rule head body)
          gen_atom
          (list_size (int_range 1 4)
             (oneof [ map (fun a -> A.Pos a) gen_atom; map (fun a -> A.Neg a) gen_atom ]));
      ])

let roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"pretty/parse roundtrip" gen_clause (fun c ->
         let text = A.clause_to_string c in
         match P.parse_clause text with
         | c' -> A.equal_clause c c'
         | exception P.Parse_error (msg, pos) ->
             QCheck2.Test.fail_reportf "reparse failed at %s (%s) for %s" (Datalog.Lexer.pos_to_string pos) msg text))

let () =
  Alcotest.run "datalog_ast"
    [
      ( "parser",
        [
          Alcotest.test_case "fact" `Quick test_parse_fact;
          Alcotest.test_case "rule" `Quick test_parse_rule;
          Alcotest.test_case "negation" `Quick test_parse_negation;
          Alcotest.test_case "terms" `Quick test_parse_terms;
          Alcotest.test_case "arrow variant" `Quick test_parse_arrow_variant;
          Alcotest.test_case "program" `Quick test_parse_program;
          Alcotest.test_case "query" `Quick test_parse_query;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "ast",
        [
          Alcotest.test_case "vars_of" `Quick test_vars_of;
          Alcotest.test_case "groundness" `Quick test_ground_and_safety_shapes;
          Alcotest.test_case "pretty printing" `Quick test_pretty;
        ] );
      ("roundtrip", [ roundtrip ]);
    ]
