(* Differential tests for the compiled execution backend.

   The contract is stronger than "same answers": for every plan shape the
   planner can produce, the closure-compiled backend must return the same
   rows in the same order as the tuple-at-a-time interpreter AND charge
   the exact same Stats counter delta, statement by statement.  Twin
   engines (one per backend) execute identical SQL in lockstep so their
   tables never diverge; the session-level tests do the same for whole
   LFP evaluations over randomized list/tree/dag data. *)

module E = Rdbms.Engine
module Stats = Rdbms.Stats
module Profile = Rdbms.Profile
module Value = Rdbms.Value
module Rng = Dkb_util.Rng
module Session = Core.Session
module Compiler = Core.Compiler
module Graphgen = Workload.Graphgen
module Queries = Workload.Queries
module Common = Experiments.Common

(* ------------------------------------------------------------------ *)
(* Stats deltas compared structurally (the record is all ints).       *)

let stats_fields (d : Stats.t) =
  [
    ("page_reads", d.Stats.page_reads);
    ("page_writes", d.Stats.page_writes);
    ("index_probes", d.Stats.index_probes);
    ("rows_read", d.Stats.rows_read);
    ("rows_inserted", d.Stats.rows_inserted);
    ("rows_deleted", d.Stats.rows_deleted);
    ("tables_created", d.Stats.tables_created);
    ("tables_dropped", d.Stats.tables_dropped);
    ("tables_truncated", d.Stats.tables_truncated);
    ("statements", d.Stats.statements);
    ("statements_prepared", d.Stats.statements_prepared);
    ("plan_cache_hits", d.Stats.plan_cache_hits);
    ("plan_cache_misses", d.Stats.plan_cache_misses);
    ("txns_committed", d.Stats.txns_committed);
    ("txns_rolled_back", d.Stats.txns_rolled_back);
    ("wal_records", d.Stats.wal_records);
    ("wal_bytes", d.Stats.wal_bytes);
    ("recoveries", d.Stats.recoveries);
    ("tables_analyzed", d.Stats.tables_analyzed);
    ("card_replans", d.Stats.card_replans);
  ]

let pp_stats fmt d =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.filter_map
          (fun (k, v) -> if v = 0 then None else Some (Printf.sprintf "%s=%d" k v))
          (stats_fields d)))

let stats_t = Alcotest.testable pp_stats (fun a b -> stats_fields a = stats_fields b)

let row_strings rows =
  List.map (fun row -> Array.to_list (Array.map Value.to_string row)) rows

(* ------------------------------------------------------------------ *)
(* Twin engines running identical SQL under the two backends.         *)

type twin = {
  ei : E.t;  (** interpreted *)
  ec : E.t;  (** compiled *)
}

let twin () =
  let mk backend =
    let e = E.create () in
    E.set_exec_backend e backend;
    (* the whole differential battery runs with the invariant sanitizer
       on: any index/relation bookkeeping either backend corrupts turns
       into an immediate Sql_error at the offending statement *)
    E.set_sanitize e true;
    e
  in
  { ei = mk E.Interpreted; ec = mk E.Compiled }

let set_join_order t mode =
  E.set_join_order t.ei mode;
  E.set_join_order t.ec mode

let norm = function
  | E.Rows { columns; rows } -> `Rows (columns, row_strings rows)
  | E.Affected n -> `Affected n
  | E.Done -> `Done

let step t sql =
  let run e =
    let before = Stats.copy (E.stats e) in
    let r = E.exec e sql in
    (norm r, Stats.diff (E.stats e) before)
  in
  let ri, di = run t.ei in
  let rc, dc = run t.ec in
  (match (ri, rc) with
  | `Rows (ci, rowsi), `Rows (cc, rowsc) ->
      Alcotest.(check (list string)) (sql ^ ": columns") ci cc;
      Alcotest.(check (list (list string))) (sql ^ ": rows (in order)") rowsi rowsc
  | `Affected a, `Affected b -> Alcotest.(check int) (sql ^ ": affected") a b
  | `Done, `Done -> ()
  | _ -> Alcotest.fail (sql ^ ": result kinds differ between backends"));
  Alcotest.check stats_t (sql ^ ": stats delta") di dc

let steps t sqls = List.iter (step t) sqls

(* Randomized base data: [big] has duplicate keys in a small domain so
   joins fan out, [small] keeps a few keys, [third] starts empty. *)
let seeded_twin ?(index = true) seed =
  let t = twin () in
  steps t
    [
      "CREATE TABLE big (k integer, v char)";
      "CREATE TABLE small (k integer, w char)";
      "CREATE TABLE third (k integer, z char)";
    ];
  if index then
    steps t
      [
        "CREATE INDEX idx_big_k ON big (k)";
        "CREATE INDEX idx_small_k ON small (k)";
      ];
  let rng = Rng.create seed in
  let letter () = Printf.sprintf "s%d" (Rng.int rng 4) in
  steps t
    (List.init 60 (fun _ ->
         Printf.sprintf "INSERT INTO big VALUES (%d, '%s')" (Rng.int rng 20)
           (letter ()))
    @ List.init 12 (fun _ ->
          Printf.sprintf "INSERT INTO small VALUES (%d, '%s')" (Rng.int rng 20)
            (letter ())));
  t

(* Every operator the planner can emit (see test_planner.ml), plus the
   set operations, aggregation and sorting. *)
let battery =
  [
    "SELECT v FROM big WHERE k = 5";      (* IndexScan (or SeqScan w/o index) *)
    "SELECT v FROM big WHERE 5 = k";
    "SELECT v FROM big WHERE k > 5";      (* SeqScan + filter *)
    "SELECT v FROM big WHERE k > 3 AND k < 9 AND NOT v = 's0'";
    "SELECT b.v FROM small s, big b WHERE s.k = b.k";  (* Index/HashJoin *)
    "SELECT b.v FROM small s, big b WHERE s.k = b.k AND b.v = 's1'";
    "SELECT b.v, s.w FROM small s, big b";             (* NestedLoopJoin *)
    "SELECT b.v FROM small s, big b WHERE s.k < b.k";  (* non-equi residual *)
    "SELECT v FROM big WHERE NOT EXISTS (SELECT * FROM small s WHERE s.k = big.k)";
    "SELECT DISTINCT v FROM big";
    "SELECT v FROM big ORDER BY v";
    "SELECT k, v FROM big ORDER BY v, k";
    "SELECT t.z FROM small s, big b, third t WHERE s.k = b.k AND b.k = t.k";
    "SELECT COUNT(*) FROM big";
    "SELECT COUNT(*) FROM big WHERE k = 5";
    "SELECT v, COUNT(*) FROM big GROUP BY v";
    "SELECT v, COUNT(*), SUM(k) FROM big GROUP BY v ORDER BY 1";
    "SELECT v FROM big UNION SELECT w FROM small";
    "SELECT v FROM big UNION ALL SELECT w FROM small";
    "SELECT v FROM big EXCEPT SELECT w FROM small";
  ]

let run_battery t =
  (* each statement twice: first run plans (cache miss, compiles the
     closure tree), second run exercises the cached/lazy-forced path *)
  List.iter
    (fun sql ->
      step t sql;
      step t sql)
    battery

let test_battery_indexed () = run_battery (seeded_twin 11)
let test_battery_no_index () = run_battery (seeded_twin ~index:false 12)

let test_battery_join_orders () =
  let t = seeded_twin 13 in
  step t "ANALYZE";
  List.iter
    (fun mode ->
      set_join_order t mode;
      run_battery t)
    [ Rdbms.Planner.Greedy; Rdbms.Planner.Costed; Rdbms.Planner.Syntactic ]

let test_mutations_in_lockstep () =
  let t = seeded_twin 14 in
  steps t
    [
      "INSERT INTO third SELECT k, v FROM big WHERE k < 10";  (* Insert_select *)
      "SELECT k, z FROM third";
      "INSERT INTO third SELECT b.k, s.w FROM big b, small s WHERE b.k = s.k";
      "SELECT COUNT(*) FROM third";
      "DELETE FROM third WHERE k > 12";
      "UPDATE third SET z = 'u' WHERE k = 1";
      "SELECT k, z FROM third ORDER BY 1, 2";
      "TRUNCATE TABLE third";
      "SELECT COUNT(*) FROM third";
    ]

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE parity: under BOTH backends the per-operator counters
   must sum exactly to the statement's Stats delta, and the two profile
   trees must agree node for node (op label, rows, reads, writes,
   probes — everything except wall time).                              *)

let rec shape (n : Profile.t) =
  Printf.sprintf "%s rows=%d reads=%d writes=%d probes=%d" n.Profile.op
    n.Profile.rows n.Profile.reads n.Profile.writes n.Profile.probes
  :: List.concat_map shape (Profile.children n)

let check_sums what (profile : Profile.t) (delta : Stats.t) =
  Alcotest.(check int) (what ^ ": reads sum") delta.Stats.page_reads
    (Profile.total_reads profile);
  Alcotest.(check int) (what ^ ": writes sum") delta.Stats.page_writes
    (Profile.total_writes profile);
  Alcotest.(check int) (what ^ ": probes sum") delta.Stats.index_probes
    (Profile.total_probes profile)

let test_analyze_parity () =
  let t = seeded_twin 15 in
  let analyzed =
    [
      "SELECT b.v FROM small s, big b WHERE s.k = b.k";
      "SELECT v FROM big WHERE NOT EXISTS (SELECT * FROM small s WHERE s.k = big.k)";
      "SELECT v, COUNT(*) FROM big GROUP BY v ORDER BY 1";
      "INSERT INTO third SELECT k, v FROM big WHERE k < 10";
    ]
  in
  List.iter
    (fun sql ->
      let pi, di =
        let _, p, d = E.exec_analyze t.ei sql in
        (p, d)
      in
      let pc, dc =
        let _, p, d = E.exec_analyze t.ec sql in
        (p, d)
      in
      check_sums ("interpreted " ^ sql) pi di;
      check_sums ("compiled " ^ sql) pc dc;
      Alcotest.check stats_t (sql ^ ": analyze deltas") di dc;
      Alcotest.(check (list string)) (sql ^ ": profile trees") (shape pi) (shape pc))
    analyzed

(* ------------------------------------------------------------------ *)
(* Whole-LFP differential through the Session facade: identical data in
   two sessions, one query per backend, identical answers / iteration
   counts / execution counters.                                        *)

let session_with setup =
  let s = Session.create () in
  setup s;
  s

let query_both ?(optimize = Compiler.Opt_off) ?(strategy = Core.Runtime.Seminaive)
    setup goal label =
  let run exec =
    (* sanitize on: every generated statement of the LFP loop is followed
       by a structural audit, and a full invariant check closes the run *)
    let s = session_with setup in
    E.set_sanitize (Session.engine s) true;
    let options = { Session.default_options with exec; optimize; strategy } in
    match Session.query_goal s ~options goal with
    | Ok a ->
        (match E.check_invariants (Session.engine s) with
        | [] -> ()
        | vs ->
            Alcotest.fail
              (label ^ ": "
              ^ String.concat "; " (List.map Rdbms.Invariants.violation_to_string vs)));
        a
    | Error msg -> Alcotest.fail (label ^ ": " ^ msg)
  in
  let ai = run E.Interpreted in
  let ac = run E.Compiled in
  let cols_i, rows_i = Session.answer_rows ai in
  let cols_c, rows_c = Session.answer_rows ac in
  Alcotest.(check (list string)) (label ^ ": columns") cols_i cols_c;
  Alcotest.(check (list (list string)))
    (label ^ ": answer rows (in order)")
    (row_strings rows_i) (row_strings rows_c);
  Alcotest.(check (list (pair string int)))
    (label ^ ": iterations")
    ai.Session.run.Core.Runtime.iterations ac.Session.run.Core.Runtime.iterations;
  Alcotest.check stats_t (label ^ ": execution counters")
    ai.Session.run.Core.Runtime.io ac.Session.run.Core.Runtime.io

let test_lfp_tree () =
  let tree = Graphgen.full_binary_tree ~depth:6 () in
  let setup s =
    Common.ok (Queries.setup_parent s tree.Graphgen.t_edges);
    Common.ok (Session.load_rules s Queries.ancestor_rules)
  in
  let goal = Queries.ancestor_goal tree.Graphgen.t_root in
  query_both setup goal "ancestor/tree seminaive";
  query_both ~strategy:Core.Runtime.Naive setup goal "ancestor/tree naive";
  query_both ~optimize:Compiler.Opt_on setup goal "ancestor/tree magic";
  query_both ~optimize:Compiler.Opt_supplementary setup goal
    "ancestor/tree supplementary"

let test_lfp_lists () =
  let l =
    let rng = Rng.create 21 in
    Graphgen.lists ~rng ~count:5 ~avg_length:8
  in
  let setup s =
    Common.ok (Queries.setup_parent s l.Graphgen.l_edges);
    Common.ok (Session.load_rules s Queries.ancestor_rules)
  in
  let goal = Queries.ancestor_goal (List.hd l.Graphgen.l_heads) in
  query_both setup goal "ancestor/lists seminaive";
  query_both ~optimize:Compiler.Opt_on setup goal "ancestor/lists magic"

let test_lfp_dag () =
  let d =
    let rng = Rng.create 22 in
    Graphgen.dag ~rng ~path_length:6 ~width:4 ~fan_out:2 ()
  in
  let setup s =
    Common.ok (Queries.setup_edge s d.Graphgen.d_edges);
    Common.ok (Session.load_rules s Queries.tc_rules)
  in
  query_both setup (Queries.tc_goal_from (List.hd d.Graphgen.d_sources))
    "tc/dag from source";
  query_both setup Queries.tc_goal_all "tc/dag all";
  query_both ~optimize:Compiler.Opt_on setup
    (Queries.tc_goal_from (List.hd d.Graphgen.d_sources))
    "tc/dag magic"

let test_lfp_same_generation () =
  let tree = Graphgen.full_binary_tree ~depth:5 () in
  let setup s =
    Common.ok (Queries.setup_parent s tree.Graphgen.t_edges);
    Common.ok (Session.load_rules s Queries.same_generation_rules)
  in
  let leaf = tree.Graphgen.t_root + ((1 lsl (tree.Graphgen.t_depth - 1)) - 1) in
  query_both setup (Queries.same_generation_goal leaf) "sg/tree seminaive";
  query_both ~optimize:Compiler.Opt_on setup
    (Queries.same_generation_goal leaf)
    "sg/tree magic"

let () =
  Alcotest.run "exec_compiled"
    [
      ( "sql differential",
        [
          Alcotest.test_case "operator battery, indexed" `Quick test_battery_indexed;
          Alcotest.test_case "operator battery, no index" `Quick test_battery_no_index;
          Alcotest.test_case "battery under greedy/costed/syntactic" `Quick
            test_battery_join_orders;
          Alcotest.test_case "mutations in lockstep" `Quick test_mutations_in_lockstep;
        ] );
      ( "explain analyze",
        [ Alcotest.test_case "counter sums and profile parity" `Quick test_analyze_parity ] );
      ( "lfp differential",
        [
          Alcotest.test_case "ancestor over a tree" `Quick test_lfp_tree;
          Alcotest.test_case "ancestor over lists" `Quick test_lfp_lists;
          Alcotest.test_case "transitive closure over a dag" `Quick test_lfp_dag;
          Alcotest.test_case "same generation" `Quick test_lfp_same_generation;
        ] );
    ]
