(* EXPLAIN ANALYZE and the operator-level profiling layer: per-operator
   counters must sum exactly to the engine-global Stats delta of the
   statement, for plain scans, index joins, and INSERT ... SELECT. *)

module Engine = Rdbms.Engine
module Profile = Rdbms.Profile
module Stats = Rdbms.Stats

let exec e sql = ignore (Engine.exec e sql)

let engine_with_parent () =
  let e = Engine.create () in
  exec e "CREATE TABLE parent (par INT, child INT)";
  exec e "CREATE INDEX idx_par ON parent (par)";
  exec e "CREATE INDEX idx_child ON parent (child)";
  exec e
    "INSERT INTO parent VALUES (1, 2), (1, 3), (2, 4), (2, 5), (3, 6), (3, 7)";
  e

let check_sums what (profile : Profile.t) (delta : Stats.t) =
  Alcotest.(check int) (what ^ ": reads sum") delta.Stats.page_reads
    (Profile.total_reads profile);
  Alcotest.(check int) (what ^ ": writes sum") delta.Stats.page_writes
    (Profile.total_writes profile);
  Alcotest.(check int) (what ^ ": probes sum") delta.Stats.index_probes
    (Profile.total_probes profile)

let test_join_with_index_sums () =
  let e = engine_with_parent () in
  let sql = "SELECT p.par, q.child FROM parent p, parent q WHERE p.child = q.par" in
  let result, profile, delta = Engine.exec_analyze e sql in
  (match result with
  | Engine.Rows { rows; _ } ->
      (* grandparent pairs of the two-level tree: 1 -> {4,5,6,7} *)
      Alcotest.(check int) "grandparent rows" 4 (List.length rows)
  | _ -> Alcotest.fail "expected Rows");
  check_sums "index join" profile delta;
  Alcotest.(check bool) "an index was probed" true (delta.Stats.index_probes > 0);
  Alcotest.(check bool) "pages were read" true (delta.Stats.page_reads > 0);
  Alcotest.(check int) "root rows = result rows" 4 profile.Profile.rows

let test_per_node_attribution () =
  let e = engine_with_parent () in
  let _, profile, delta =
    Engine.exec_analyze e
      "SELECT p.par, q.child FROM parent p, parent q WHERE p.child = q.par"
  in
  (* the probe charges must sit on the join node, not the scan below it *)
  let rec find pred n =
    if pred n then Some n else List.find_map (find pred) (Profile.children n)
  in
  let is_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  (match find (fun n -> is_prefix "IndexJoin" n.Profile.op) profile with
  | Some join ->
      Alcotest.(check int) "all probes on the IndexJoin node" delta.Stats.index_probes
        join.Profile.probes
  | None -> Alcotest.fail "plan has no IndexJoin node");
  match find (fun n -> is_prefix "SeqScan" n.Profile.op) profile with
  | Some scan -> Alcotest.(check int) "scan probes nothing" 0 scan.Profile.probes
  | None -> Alcotest.fail "plan has no SeqScan node"

let test_render_and_totals_line () =
  let e = engine_with_parent () in
  let text =
    Engine.explain_analyze e
      "SELECT p.par, q.child FROM parent p, parent q WHERE p.child = q.par"
  in
  let contains needle =
    Astring.String.is_infix ~affix:needle text
  in
  Alcotest.(check bool) "names the join operator" true (contains "IndexJoin");
  Alcotest.(check bool) "annotates counters" true (contains "reads=");
  Alcotest.(check bool) "has a Total line" true (contains "Total:");
  Alcotest.(check bool) "reports the cardinality" true (contains "rows=4")

let test_insert_select_analyze () =
  let e = engine_with_parent () in
  exec e "CREATE TABLE grand (a INT, b INT)";
  let result, profile, delta =
    Engine.exec_analyze e
      "INSERT INTO grand SELECT p.par, q.child FROM parent p, parent q WHERE p.child = q.par"
  in
  (match result with
  | Engine.Affected n -> Alcotest.(check int) "inserted" 4 n
  | _ -> Alcotest.fail "expected Affected");
  check_sums "insert-select" profile delta;
  Alcotest.(check bool) "synthetic insert root" true
    (profile.Profile.op = "Insert grand");
  Alcotest.(check bool) "insert charged some writes" true (delta.Stats.page_writes > 0)

let test_non_analyzable_statement () =
  let e = engine_with_parent () in
  (match Engine.exec_analyze e "CREATE TABLE t2 (x INT)" with
  | exception Engine.Sql_error _ -> ()
  | _ -> Alcotest.fail "analyzing DDL should raise Sql_error");
  (* ... and the rejected statement must not have run *)
  match Engine.exec e "SELECT * FROM t2" with
  | exception Engine.Sql_error _ -> ()
  | _ -> Alcotest.fail "t2 should not exist"

let test_missing_table_is_sql_error () =
  let e = Engine.create () in
  (match Engine.exec e "SELECT * FROM nosuch" with
  | exception Engine.Sql_error msg ->
      Alcotest.(check bool) "names the table" true
        (Astring.String.is_infix ~affix:"nosuch" msg)
  | _ -> Alcotest.fail "expected Sql_error");
  (* Catalog.find_table_exn raises the same typed error, not Failure *)
  let catalog = Engine.catalog e in
  match Rdbms.Catalog.find_table_exn catalog "nosuch" with
  | exception Engine.Sql_error _ -> ()
  | exception Failure _ -> Alcotest.fail "find_table_exn must not raise Failure"
  | _ -> Alcotest.fail "expected Sql_error"

let test_trace_hook_events () =
  let e = engine_with_parent () in
  let events = ref [] in
  Engine.set_trace_hook e (Some (fun ev -> events := ev :: !events));
  ignore (Engine.exec e "SELECT par FROM parent WHERE par = 1");
  Engine.set_trace_hook e None;
  let evs = List.rev !events in
  (match evs with
  | [ Engine.Tr_stmt_begin { sql = b }; Engine.Tr_plan { sql = p; tree };
      Engine.Tr_stmt_end { sql = f; ok; rows; delta; ms; est; _ } ] ->
      Alcotest.(check bool) "same sql on begin/plan/end" true (b = p && p = f);
      Alcotest.(check bool) "plan tree rendered" true (String.length tree > 0);
      Alcotest.(check bool) "ok" true ok;
      Alcotest.(check (option int)) "row count" (Some 2) rows;
      (match est with
      | Some e ->
          Alcotest.(check bool) "estimate positive" true
            (e.Rdbms.Cost.rows > 0.0 && e.Rdbms.Cost.cost > 0.0)
      | None -> Alcotest.fail "expected a cost estimate on a planned SELECT");
      Alcotest.(check bool) "charged reads or probes" true
        (delta.Stats.page_reads + delta.Stats.index_probes > 0);
      Alcotest.(check bool) "ms recorded" true (ms >= 0.0)
  | _ ->
      Alcotest.fail
        (Printf.sprintf "expected begin/plan/end, got %d events" (List.length evs)));
  (* with the hook removed, no more events accumulate *)
  let n = List.length !events in
  ignore (Engine.exec e "SELECT par FROM parent");
  Alcotest.(check int) "hook detached" n (List.length !events)

let test_trace_hook_failure () =
  let e = engine_with_parent () in
  let events = ref [] in
  Engine.set_trace_hook e (Some (fun ev -> events := ev :: !events));
  (match Engine.exec e "SELECT * FROM nosuch" with
  | exception Engine.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected Sql_error");
  let saw_failed_end =
    List.exists
      (function Engine.Tr_stmt_end { ok; _ } -> not ok | _ -> false)
      !events
  in
  Alcotest.(check bool) "failing statement still emits stmt_end ok=false" true
    saw_failed_end

let () =
  Alcotest.run "explain_analyze"
    [
      ( "operator counters",
        [
          Alcotest.test_case "join-with-index sums to Stats delta" `Quick
            test_join_with_index_sums;
          Alcotest.test_case "charges sit on the right node" `Quick
            test_per_node_attribution;
          Alcotest.test_case "rendered text" `Quick test_render_and_totals_line;
          Alcotest.test_case "INSERT ... SELECT" `Quick test_insert_select_analyze;
          Alcotest.test_case "DDL rejected without running" `Quick
            test_non_analyzable_statement;
        ] );
      ( "error boundaries",
        [
          Alcotest.test_case "missing table is Sql_error" `Quick
            test_missing_table_is_sql_error;
        ] );
      ( "trace hook",
        [
          Alcotest.test_case "begin/plan/end per statement" `Quick test_trace_hook_events;
          Alcotest.test_case "failure emits ok=false" `Quick test_trace_hook_failure;
        ] );
    ]
