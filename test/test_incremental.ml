(* Tests for incremental view maintenance: after every update, a
   maintained view must be tuple-identical to a from-scratch LFP over
   the same base state — for counting (non-recursive) and DRed
   (recursive) strategies alike. Plus the update-path edge cases:
   deleting a never-inserted fact, delete + re-insert in one batch,
   ROLLBACK restoring base relations and derivation counts. *)

module Session = Core.Session
module Incremental = Core.Incremental
module Engine = Rdbms.Engine
module D = Rdbms.Datatype
module V = Rdbms.Value
module Rng = Dkb_util.Rng

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let sorted_rows rows = List.sort compare (List.map Array.to_list rows)

let query_rows s goal =
  let a = ok (Session.query s goal) in
  sorted_rows (snd (Session.answer_rows a))

let view s pred = sorted_rows (ok (Session.view_rows s pred))

let table_rows s sql =
  match Engine.exec (Session.engine s) sql with
  | Engine.Rows { rows; _ } -> sorted_rows rows
  | _ -> Alcotest.fail ("expected rows from " ^ sql)

let setup ?(indexes = [ "src" ]) rules =
  let s = Session.create () in
  ok (Session.define_base s "edge" [ ("src", D.TInt); ("dst", D.TInt) ] ~indexes ());
  List.iter (fun r -> ok (Session.add_rule s r)) rules;
  ignore (ok (Session.update_stored s ~clear:true ()));
  s

let load_edges s edges =
  ignore (ok (Session.add_facts s "edge" (Workload.Graphgen.to_rows edges)))

let row_of (a, b) = [ V.Int a; V.Int b ]

(* ------------------------------------------------------------------ *)
(* Randomized differential battery: maintained view = from-scratch LFP
   after every update of a mixed insert/delete workload. *)

let differential ~mode ~rules ~roots ~goals ~seed ~steps () =
  let s = setup rules in
  Session.set_maintenance s mode;
  let rng = Rng.create seed in
  let n = 7 in
  (* initial graph: random edges over n nodes *)
  let live = Hashtbl.create 32 in
  let initial =
    List.init 12 (fun _ -> (1 + Rng.int rng n, 1 + Rng.int rng n))
    |> List.sort_uniq compare
  in
  List.iter (fun e -> Hashtbl.replace live e ()) initial;
  load_edges s initial;
  List.iter (fun root -> ignore (ok (Session.materialize s root))) roots;
  let maintained = ref 0 in
  let check step =
    List.iter
      (fun (pred, goal) ->
        Alcotest.(check (list (list string)))
          (Printf.sprintf "%s = from-scratch LFP after step %d" pred step)
          (List.map (List.map V.to_string) (query_rows s goal))
          (List.map (List.map V.to_string) (view s pred)))
      goals;
    (* every step is a quiescent point: the full sanitizer (structural
       audit + matcnt__/mat__ cross-checks) must hold *)
    match Engine.check_invariants (Session.engine s) with
    | [] -> ()
    | vs ->
        Alcotest.failf "invariants violated after step %d: %s" step
          (String.concat "; " (List.map Rdbms.Invariants.violation_to_string vs))
  in
  check (-1);
  for step = 0 to steps - 1 do
    let edges = Hashtbl.fold (fun e () acc -> e :: acc) live [] in
    let do_delete = edges <> [] && Rng.bool rng in
    let report =
      if do_delete then begin
        let e = Rng.pick rng (Array.of_list edges) in
        Hashtbl.remove live e;
        ok (Session.delete_facts s "edge" [ row_of e ])
      end
      else begin
        let e = (1 + Rng.int rng n, 1 + Rng.int rng n) in
        Hashtbl.replace live e ();
        ok (Session.insert_facts s "edge" [ row_of e ])
      end
    in
    if report.Incremental.maintained then incr maintained;
    check step
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most steps maintained incrementally (%d/%d)" !maintained steps)
    true
    (2 * !maintained >= steps)

let test_differential_counting () =
  (* layered non-recursive views: deltas propagate through a derived
     predicate into another counting-maintained one *)
  differential ~mode:Incremental.Counting
    ~rules:
      [
        "hop2(X, Y) :- edge(X, Z), edge(Z, Y).";
        "hop3(X, Y) :- hop2(X, Z), edge(Z, Y).";
      ]
    ~roots:[ "hop3" ]
    ~goals:[ ("hop2", "hop2(X, Y)"); ("hop3", "hop3(X, Y)") ]
    ~seed:42 ~steps:40 ()

let test_differential_dred () =
  (* the recursive clique (cycles included in the random graphs) *)
  differential ~mode:Incremental.Auto
    ~rules:
      [
        "anc(X, Y) :- edge(X, Y).";
        "anc(X, Y) :- edge(X, Z), anc(Z, Y).";
      ]
    ~roots:[ "anc" ]
    ~goals:[ ("anc", "anc(X, Y)") ]
    ~seed:7 ~steps:40 ()

let test_differential_mixed () =
  (* counting below DRed: a non-recursive view feeding a recursive one *)
  differential ~mode:Incremental.Auto
    ~rules:
      [
        "hop2(X, Y) :- edge(X, Z), edge(Z, Y).";
        "far(X, Y) :- hop2(X, Y).";
        "far(X, Y) :- hop2(X, Z), far(Z, Y).";
      ]
    ~roots:[ "far" ]
    ~goals:[ ("hop2", "hop2(X, Y)"); ("far", "far(X, Y)") ]
    ~seed:99 ~steps:30 ()

(* ------------------------------------------------------------------ *)
(* Derivation counts: exact multiplicities on the diamond *)

let test_counting_multiplicities () =
  let s = setup [ "hop2(X, Y) :- edge(X, Z), edge(Z, Y)." ] in
  Session.set_maintenance s Incremental.Counting;
  load_edges s [ (1, 2); (1, 3); (2, 4); (3, 4) ];
  ignore (ok (Session.materialize s "hop2"));
  (* hop2(1,4) has two derivations: via 2 and via 3 *)
  Alcotest.(check (list (list string)))
    "two derivations recorded"
    [ [ "1"; "4"; "2" ] ]
    (List.map (List.map V.to_string) (table_rows s "SELECT * FROM matcnt__hop2"));
  let r = ok (Session.delete_facts s "edge" [ row_of (2, 4) ]) in
  Alcotest.(check bool) "maintained" true r.Incremental.maintained;
  (* one support gone, the tuple survives on the other *)
  Alcotest.(check (list (list string)))
    "count decremented, tuple kept"
    [ [ "1"; "4"; "1" ] ]
    (List.map (List.map V.to_string) (table_rows s "SELECT * FROM matcnt__hop2"));
  Alcotest.(check (list (list string)))
    "view keeps the tuple" [ [ "1"; "4" ] ]
    (List.map (List.map V.to_string) (view s "hop2"));
  let r = ok (Session.delete_facts s "edge" [ row_of (3, 4) ]) in
  Alcotest.(check (list (pair string (pair int int))))
    "view delta reported"
    [ ("hop2", (0, 1)) ]
    (List.map (fun (p, i, d) -> (p, (i, d))) r.Incremental.derived_changes);
  Alcotest.(check (list (list string))) "tuple gone" []
    (List.map (List.map V.to_string) (view s "hop2"))

(* ------------------------------------------------------------------ *)
(* Update-path edge cases *)

let test_delete_never_inserted () =
  let s = setup [ "hop2(X, Y) :- edge(X, Z), edge(Z, Y)." ] in
  load_edges s [ (1, 2); (2, 3) ];
  ignore (ok (Session.materialize s "hop2"));
  let before = view s "hop2" in
  let r = ok (Session.delete_facts s "edge" [ row_of (8, 9) ]) in
  Alcotest.(check int) "no base rows deleted" 0 r.Incremental.base_deleted;
  Alcotest.(check (list (pair string (pair int int)))) "no view changes" []
    (List.map (fun (p, i, d) -> (p, (i, d))) r.Incremental.derived_changes);
  Alcotest.(check bool) "view unchanged" true (before = view s "hop2")

let test_delete_and_reinsert_in_one_batch () =
  let s = setup [ "hop2(X, Y) :- edge(X, Z), edge(Z, Y)." ] in
  load_edges s [ (1, 2); (2, 3) ];
  ignore (ok (Session.materialize s "hop2"));
  let before_view = view s "hop2" in
  let before_cnt = table_rows s "SELECT * FROM matcnt__hop2" in
  let r =
    ok (Session.apply_facts s ~inserts:[ ("edge", row_of (1, 2)) ]
          ~deletes:[ ("edge", row_of (1, 2)) ] ())
  in
  (* both sides stay real — the phases net out *)
  Alcotest.(check (pair int int)) "delete + re-insert both applied" (1, 1)
    (r.Incremental.base_inserted, r.Incremental.base_deleted);
  Alcotest.(check bool) "view unchanged" true (before_view = view s "hop2");
  Alcotest.(check bool) "counts unchanged" true
    (before_cnt = table_rows s "SELECT * FROM matcnt__hop2");
  Alcotest.(check (list (list string))) "base row still present"
    [ [ "1"; "2" ]; [ "2"; "3" ] ]
    (List.map (List.map V.to_string) (table_rows s "SELECT * FROM edge"))

let test_rollback_restores_views_and_counts () =
  let s = setup [ "hop2(X, Y) :- edge(X, Z), edge(Z, Y)." ] in
  load_edges s [ (1, 2); (1, 3); (2, 4); (3, 4) ];
  ignore (ok (Session.materialize s "hop2"));
  let engine = Session.engine s in
  let base_before = table_rows s "SELECT * FROM edge" in
  let view_before = view s "hop2" in
  let cnt_before = table_rows s "SELECT * FROM matcnt__hop2" in
  Engine.begin_txn engine;
  let r =
    ok (Session.apply_facts s ~inserts:[ ("edge", row_of (4, 5)) ]
          ~deletes:[ ("edge", row_of (2, 4)) ] ())
  in
  Alcotest.(check bool) "maintained inside the caller's txn" true r.Incremental.maintained;
  Alcotest.(check bool) "view changed inside txn" true (view_before <> view s "hop2");
  Engine.rollback_txn engine;
  Alcotest.(check bool) "base restored" true (base_before = table_rows s "SELECT * FROM edge");
  Alcotest.(check bool) "view restored" true (view_before = view s "hop2");
  Alcotest.(check bool) "derivation counts restored" true
    (cnt_before = table_rows s "SELECT * FROM matcnt__hop2")

let test_rollback_restores_dred_view () =
  let s = setup [ "anc(X, Y) :- edge(X, Y)."; "anc(X, Y) :- edge(X, Z), anc(Z, Y)." ] in
  load_edges s [ (1, 2); (2, 3); (3, 4) ];
  ignore (ok (Session.materialize s "anc"));
  let engine = Session.engine s in
  let view_before = view s "anc" in
  Engine.begin_txn engine;
  ignore (ok (Session.delete_facts s "edge" [ row_of (2, 3) ]));
  Alcotest.(check bool) "view changed inside txn" true (view_before <> view s "anc");
  Engine.rollback_txn engine;
  Alcotest.(check bool) "view restored" true (view_before = view s "anc")

(* ------------------------------------------------------------------ *)
(* Fallbacks and mode gates *)

let test_bulk_delta_falls_back () =
  let s = setup [ "hop2(X, Y) :- edge(X, Z), edge(Z, Y)." ] in
  load_edges s [ (1, 2); (2, 3) ];
  ignore (ok (Session.materialize s "hop2"));
  let stats = Engine.stats (Session.engine s) in
  let before = stats.Rdbms.Stats.maint_fallbacks in
  let bulk = List.init 40 (fun i -> row_of (100 + i, 101 + i)) in
  let r = ok (Session.insert_facts s "edge" bulk) in
  Alcotest.(check bool) "bulk load recomputes" true r.Incremental.fallback;
  Alcotest.(check int) "fallback counted" (before + 1) stats.Rdbms.Stats.maint_fallbacks;
  Alcotest.(check (list (list string)))
    "view correct after fallback"
    (List.map (List.map V.to_string) (query_rows s "hop2(X, Y)"))
    (List.map (List.map V.to_string) (view s "hop2"))

let test_mode_off_refreshes_without_fallback () =
  let s = setup [ "hop2(X, Y) :- edge(X, Z), edge(Z, Y)." ] in
  load_edges s [ (1, 2); (2, 3) ];
  ignore (ok (Session.materialize s "hop2"));
  Session.set_maintenance s Incremental.Off;
  let stats = Engine.stats (Session.engine s) in
  let before = stats.Rdbms.Stats.maint_fallbacks in
  let r = ok (Session.insert_facts s "edge" [ row_of (3, 4) ]) in
  Alcotest.(check bool) "not maintained" false r.Incremental.maintained;
  Alcotest.(check bool) "not a fallback" false r.Incremental.fallback;
  Alcotest.(check int) "no fallback counted" before stats.Rdbms.Stats.maint_fallbacks;
  Alcotest.(check (list (list string)))
    "view still correct"
    (List.map (List.map V.to_string) (query_rows s "hop2(X, Y)"))
    (List.map (List.map V.to_string) (view s "hop2"))

let test_derived_target_rejected () =
  let s = setup [ "hop2(X, Y) :- edge(X, Z), edge(Z, Y)." ] in
  load_edges s [ (1, 2); (2, 3) ];
  ignore (ok (Session.materialize s "hop2"));
  match Session.insert_facts s "hop2" [ row_of (9, 9) ] with
  | Ok _ -> Alcotest.fail "inserting into a derived predicate must fail"
  | Error msg ->
      Alcotest.(check bool) "explains" true
        (Astring.String.is_infix ~affix:"derived" msg)

(* ------------------------------------------------------------------ *)
(* DELETE ... WHERE on an indexed column takes the index-probe path *)

let test_delete_fast_path_uses_index () =
  let s = Session.create () in
  let engine = Session.engine s in
  ok (Session.define_base s "big" [ ("k", D.TInt); ("v", D.TInt) ] ~indexes:[ "k" ] ());
  ignore
    (ok (Session.add_facts s "big" (List.init 500 (fun i -> [ V.Int i; V.Int (i * i) ]))));
  let stats = Engine.stats engine in
  let probes = stats.Rdbms.Stats.index_probes in
  let reads = stats.Rdbms.Stats.page_reads in
  (match Engine.exec engine "DELETE FROM big WHERE k = 250" with
  | Engine.Affected 1 -> ()
  | _ -> Alcotest.fail "expected one row deleted");
  Alcotest.(check int) "one index probe" (probes + 1) stats.Rdbms.Stats.index_probes;
  let delta_reads = stats.Rdbms.Stats.page_reads - reads in
  Alcotest.(check bool)
    (Printf.sprintf "probe-sized read charge (%d pages)" delta_reads)
    true
    (delta_reads >= 1 && delta_reads < 5);
  (* non-indexed predicate still scans (and still works) *)
  (match Engine.exec engine "DELETE FROM big WHERE v = 16" with
  | Engine.Affected 1 -> ()
  | r -> Alcotest.failf "expected one row deleted, got %s"
           (match r with Engine.Affected n -> string_of_int n | _ -> "?"));
  Alcotest.(check int) "scan path leaves probe count" (probes + 1)
    stats.Rdbms.Stats.index_probes

(* ------------------------------------------------------------------ *)
(* The sanitizer actually bites: corrupt the maintenance bookkeeping
   through raw SQL and the audit (and Session.check) must report it. *)

(* non-recursive, so materialization picks counting and keeps a
   matcnt__hop table alongside mat__hop *)
let hop_rules = [ "hop(X, Y) :- edge(X, Z), edge(Z, Y)." ]

let corrupted_session () =
  let s = setup hop_rules in
  load_edges s [ (1, 2); (2, 3) ];
  ignore (ok (Session.materialize s "hop"));
  s

let test_detects_count_corruption () =
  let s = corrupted_session () in
  Alcotest.(check (list string)) "clean before corruption" []
    (List.map Rdbms.Invariants.violation_to_string
       (Engine.check_invariants (Session.engine s)));
  (* a derivation count of 0 is never legal *)
  ignore (Engine.exec (Session.engine s) "UPDATE matcnt__hop SET dcount = 0 WHERE c1 = 1");
  let vs = Engine.check_invariants (Session.engine s) in
  Alcotest.(check bool) "violations reported" true (vs <> []);
  Alcotest.(check bool) "attributed to matcnt__hop" true
    (List.exists (fun v -> v.Rdbms.Invariants.v_table = "matcnt__hop") vs)

let test_detects_missing_support () =
  let s = corrupted_session () in
  (* mat__anc loses a tuple the counts still claim *)
  ignore (Engine.exec (Session.engine s) "DELETE FROM mat__hop WHERE c1 = 1 AND c2 = 3");
  let vs = Engine.check_invariants (Session.engine s) in
  Alcotest.(check bool) "violations reported" true (vs <> []);
  Alcotest.(check bool) "attributed to mat__hop" true
    (List.exists (fun v -> v.Rdbms.Invariants.v_table = "mat__hop") vs)

let test_session_check_surfaces_e301 () =
  let s = corrupted_session () in
  ignore (Engine.exec (Session.engine s) "DELETE FROM mat__hop WHERE c1 = 1 AND c2 = 3");
  let ds = Session.check s in
  Alcotest.(check bool) "E301 diagnostic" true
    (List.exists
       (fun d -> d.Datalog.Lint.code = "E301" && d.Datalog.Lint.pred = "mat__hop")
       ds)

let () =
  Alcotest.run "incremental"
    [
      ( "differential",
        [
          Alcotest.test_case "counting (layered non-recursive)" `Quick
            test_differential_counting;
          Alcotest.test_case "dred (recursive, cyclic graphs)" `Quick test_differential_dred;
          Alcotest.test_case "counting under dred" `Quick test_differential_mixed;
        ] );
      ( "counting",
        [ Alcotest.test_case "exact multiplicities" `Quick test_counting_multiplicities ] );
      ( "edge cases",
        [
          Alcotest.test_case "delete never-inserted" `Quick test_delete_never_inserted;
          Alcotest.test_case "delete + re-insert in one batch" `Quick
            test_delete_and_reinsert_in_one_batch;
          Alcotest.test_case "rollback restores counting state" `Quick
            test_rollback_restores_views_and_counts;
          Alcotest.test_case "rollback restores dred view" `Quick
            test_rollback_restores_dred_view;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "count corruption detected" `Quick test_detects_count_corruption;
          Alcotest.test_case "missing support detected" `Quick test_detects_missing_support;
          Alcotest.test_case "Session.check reports E301" `Quick
            test_session_check_surfaces_e301;
        ] );
      ( "fallbacks",
        [
          Alcotest.test_case "bulk delta recomputes" `Quick test_bulk_delta_falls_back;
          Alcotest.test_case "mode off refreshes quietly" `Quick
            test_mode_off_refreshes_without_fallback;
          Alcotest.test_case "derived target rejected" `Quick test_derived_target_rejected;
        ] );
      ( "delete fast path",
        [ Alcotest.test_case "indexed equality probes" `Quick test_delete_fast_path_uses_index ] );
    ]
