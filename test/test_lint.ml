(* Tests for the rule-base lint engine: one fixture per diagnostic code,
   plus clean programs that must produce no diagnostics at all. *)

module L = Datalog.Lint
module D = Rdbms.Datatype

let graph_base = function
  | "edge" -> true
  | "num" | "name" -> true
  | _ -> false

let graph_types = function
  | "edge" -> Some [ D.TInt; D.TInt ]
  | "num" -> Some [ D.TInt ]
  | "name" -> Some [ D.TStr ]
  | _ -> None

let run ?roots text = L.check_text ?roots ~base_types:graph_types ~is_base:graph_base text
let codes ds = List.sort_uniq compare (List.map (fun d -> d.L.code) ds)
let has code ds = List.exists (fun d -> d.L.code = code) ds

let check_has text code ds =
  Alcotest.(check bool) (code ^ " fires on " ^ text) true (has code ds)

let check_codes text expected ds =
  Alcotest.(check (list string)) ("codes of " ^ text) expected (codes ds)

(* ---------------- errors ---------------- *)

let test_e100_syntax () =
  let text = "p(X :- edge(X, Y)." in
  let ds = run text in
  check_codes text [ "E100" ] ds;
  match (List.hd ds).L.loc with
  | Some pos -> Alcotest.(check bool) "position known" true (pos.Datalog.Lexer.line >= 1)
  | None -> Alcotest.fail "E100 must carry a source position"

let test_e101_unsafe () =
  (* the unbound head variable is also a singleton: both diagnostics fire *)
  let text = "p(X, Y) :- edge(X, X)." in
  check_codes text [ "E101"; "W207" ] (run text)

let test_e102_unstratified () =
  let text = "p(X) :- edge(X, Y), not p(Y)." in
  let ds = run text in
  check_has text "E102" ds;
  let d = List.find (fun d -> d.L.code = "E102") ds in
  Alcotest.(check bool) "cycle spelled out" true
    (Astring.String.is_infix ~affix:"p" d.L.message)

let test_e103_arity_conflict () =
  let text = "p(X) :- q(X), edge(X, X).\nq(A, B) :- edge(A, B).\n" in
  let ds = run text in
  check_has text "E103" ds;
  (* the structural arity conflict must not double-report as E104 *)
  Alcotest.(check bool) "E104 suppressed" true (not (has "E104" ds))

let test_e103_against_base_schema () =
  let text = "p(X) :- edge(X)." in
  check_has text "E103" (run text)

let test_e104_type_conflict () =
  let text = "p(X) :- num(X), name(X)." in
  check_has text "E104" (run text)

(* ---------------- warnings ---------------- *)

let test_w201_dead_rule () =
  let text = "p(X) :- ghost(X)." in
  check_has text "W201" (run text)

let test_w201_self_recursion_unproductive () =
  (* a predicate defined only by recursion on itself can never fire *)
  let text = "p(X) :- p(X)." in
  check_has text "W201" (run text)

let test_w201_recursion_with_exit_is_live () =
  let text = "t(X, Y) :- edge(X, Y).\nt(X, Y) :- t(X, Z), edge(Z, Y).\n?- t(1, W).\n" in
  check_codes text [] (run text)

let test_w202_unreachable_rule () =
  let text = "p(X) :- edge(X, X).\nq(X) :- edge(X, X).\nr(X) :- q(X).\n?- p(W).\n" in
  let ds = run text in
  check_has text "W202" ds;
  let d = List.find (fun d -> d.L.code = "W202") ds in
  Alcotest.(check string) "on q's rule" "q" d.L.pred

let test_w203_unused_pred () =
  let text = "p(X) :- edge(X, X).\nq(X) :- edge(X, X).\n?- p(W).\n" in
  let ds = run text in
  check_has text "W203" ds;
  let d = List.find (fun d -> d.L.code = "W203") ds in
  Alcotest.(check string) "about q" "q" d.L.pred

let test_reachability_needs_roots () =
  (* without roots there is no reachability judgement: no W202/W203 *)
  let text = "p(X) :- edge(X, X).\nq(X) :- edge(X, X).\n" in
  check_codes text [] (run text)

let test_w204_duplicate () =
  let text = "p(X) :- edge(X, Y), edge(Y, X).\np(A) :- edge(A, B), edge(B, A).\n" in
  check_codes text [ "W204" ] (run text)

let test_w205_subsumed () =
  let text = "p(X) :- edge(X, _Y).\np(X) :- edge(X, X).\n" in
  let ds = run text in
  check_has text "W205" ds

let test_w206_cartesian () =
  let text = "p(X, Y) :- edge(X, X), edge(Y, Y)." in
  check_codes text [ "W206" ] (run text)

let test_w207_singleton () =
  let text = "p(X) :- edge(X, Y)." in
  let ds = run text in
  check_codes text [ "W207" ] ds;
  let d = List.hd ds in
  Alcotest.(check bool) "names the variable" true
    (Astring.String.is_infix ~affix:"Y" d.L.message)

let test_w207_underscore_exempt () =
  let text = "p(X) :- edge(X, _Y)." in
  check_codes text [] (run text)

let test_w208_no_binding () =
  let text = "p(X) :- p(Y), edge(Y, X)." in
  check_has text "W208" (run text)

let test_w208_bound_recursion_clean () =
  let text = "p(X) :- edge(X, Y), p(Y).\np(X) :- num(X).\n?- p(1).\n" in
  check_codes text [] (run text)

(* ---------------- ordering, formatting, clean programs ---------------- *)

let test_errors_sort_first () =
  (* the warning is on line 1, the error on line 2: severity outranks position *)
  let text = "a(X) :- edge(X, Y).\nb(X, Y) :- edge(X, X).\n" in
  match run text with
  | [] -> Alcotest.fail "expected diagnostics"
  | first :: _ ->
      Alcotest.(check bool) "an error leads" true (first.L.severity = L.Sev_error)

let test_to_string_shape () =
  let ds = run "p(X) :- edge(X, Y)." in
  let s = L.to_string (List.hd ds) in
  Alcotest.(check bool) ("line:col prefix in " ^ s) true
    (Astring.String.is_prefix ~affix:"1:1: warning[W207]" s)

let test_clean_program () =
  let text =
    "anc(X, Y) :- edge(X, Y).\nanc(X, Y) :- edge(X, Z), anc(Z, Y).\n?- anc(1, W).\n"
  in
  check_codes text [] (run text)

let test_codes_table_covers_diagnostics () =
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " documented") true (List.mem_assoc code L.codes))
    [ "E100"; "E101"; "E102"; "E103"; "E104"; "W201"; "W202"; "W203"; "W204"; "W205";
      "W206"; "W207"; "W208"; "E301" ]

let () =
  Alcotest.run "lint"
    [
      ( "errors",
        [
          Alcotest.test_case "E100 syntax" `Quick test_e100_syntax;
          Alcotest.test_case "E101 unsafe" `Quick test_e101_unsafe;
          Alcotest.test_case "E102 unstratified" `Quick test_e102_unstratified;
          Alcotest.test_case "E103 arity conflict" `Quick test_e103_arity_conflict;
          Alcotest.test_case "E103 vs base schema" `Quick test_e103_against_base_schema;
          Alcotest.test_case "E104 type conflict" `Quick test_e104_type_conflict;
        ] );
      ( "warnings",
        [
          Alcotest.test_case "W201 dead rule" `Quick test_w201_dead_rule;
          Alcotest.test_case "W201 pure recursion" `Quick test_w201_self_recursion_unproductive;
          Alcotest.test_case "W201 exit keeps live" `Quick test_w201_recursion_with_exit_is_live;
          Alcotest.test_case "W202 unreachable" `Quick test_w202_unreachable_rule;
          Alcotest.test_case "W203 unused" `Quick test_w203_unused_pred;
          Alcotest.test_case "roots gate reachability" `Quick test_reachability_needs_roots;
          Alcotest.test_case "W204 duplicate" `Quick test_w204_duplicate;
          Alcotest.test_case "W205 subsumed" `Quick test_w205_subsumed;
          Alcotest.test_case "W206 cartesian" `Quick test_w206_cartesian;
          Alcotest.test_case "W207 singleton" `Quick test_w207_singleton;
          Alcotest.test_case "W207 underscore" `Quick test_w207_underscore_exempt;
          Alcotest.test_case "W208 unbound recursion" `Quick test_w208_no_binding;
          Alcotest.test_case "W208 bound recursion" `Quick test_w208_bound_recursion_clean;
        ] );
      ( "shape",
        [
          Alcotest.test_case "errors first" `Quick test_errors_sort_first;
          Alcotest.test_case "to_string" `Quick test_to_string_shape;
          Alcotest.test_case "clean program" `Quick test_clean_program;
          Alcotest.test_case "codes table" `Quick test_codes_table_covers_diagnostics;
        ] );
    ]
