(* Tests that the planner picks the intended physical operators and
   resolves names correctly. *)

module E = Rdbms.Engine

let fresh ?(index = true) () =
  let e = E.create () in
  ignore (E.exec e "CREATE TABLE big (k integer, v char)");
  ignore (E.exec e "CREATE TABLE small (k integer, w char)");
  if index then begin
    ignore (E.exec e "CREATE INDEX idx_big_k ON big (k)");
    ignore (E.exec e "CREATE INDEX idx_small_k ON small (k)")
  end;
  e

let has e sql affix =
  let plan = E.explain e sql in
  Alcotest.(check bool)
    (Printf.sprintf "plan of %S contains %s:\n%s" sql affix plan)
    true
    (Astring.String.is_infix ~affix plan)

let lacks e sql affix =
  let plan = E.explain e sql in
  Alcotest.(check bool)
    (Printf.sprintf "plan of %S avoids %s:\n%s" sql affix plan)
    false
    (Astring.String.is_infix ~affix plan)

let test_index_scan_on_eq_const () =
  let e = fresh () in
  has e "SELECT v FROM big WHERE k = 5" "IndexScan";
  (* reversed operands too *)
  has e "SELECT v FROM big WHERE 5 = k" "IndexScan";
  lacks e "SELECT v FROM big WHERE k > 5" "IndexScan"

let test_seq_scan_without_index () =
  let e = fresh ~index:false () in
  has e "SELECT v FROM big WHERE k = 5" "SeqScan"

let test_index_join_when_indexed () =
  let e = fresh () in
  has e "SELECT b.v FROM small s, big b WHERE s.k = b.k" "IndexJoin"

let test_hash_join_without_index () =
  let e = fresh ~index:false () in
  has e "SELECT b.v FROM small s, big b WHERE s.k = b.k" "HashJoin"

let test_index_join_declined_with_local_filter () =
  (* a single-table predicate on the inner table forces the scan-based
     join so the filter can be applied at the scan *)
  let e = fresh () in
  has e "SELECT b.v FROM small s, big b WHERE s.k = b.k AND b.v = 'x'" "HashJoin"

let test_cross_join_is_nested_loop () =
  let e = fresh () in
  has e "SELECT b.v FROM small s, big b" "NestedLoopJoin"

let test_non_equi_join_residual () =
  let e = fresh () in
  has e "SELECT b.v FROM small s, big b WHERE s.k < b.k" "NestedLoopJoin"

let test_anti_join () =
  let e = fresh () in
  has e "SELECT v FROM big WHERE NOT EXISTS (SELECT * FROM small s WHERE s.k = big.k)" "AntiJoin"

let test_distinct_and_sort_nodes () =
  let e = fresh () in
  has e "SELECT DISTINCT v FROM big" "Distinct";
  has e "SELECT v FROM big ORDER BY v" "Sort"

let test_three_way_join () =
  let e = fresh () in
  ignore (E.exec e "CREATE TABLE third (k integer, z char)");
  let plan =
    E.explain e
      "SELECT t.z FROM small s, big b, third t WHERE s.k = b.k AND b.k = t.k"
  in
  (* both joins present, no cross product *)
  Alcotest.(check bool) ("two joins:\n" ^ plan) true
    (Astring.String.is_infix ~affix:"Join" plan
    && not (Astring.String.is_infix ~affix:"NestedLoopJoin" plan))

let test_greedy_join_order () =
  let e = fresh () in
  (* big has 100 rows, small has 2: greedy should scan small first even
     though the query names big first *)
  for i = 1 to 100 do
    ignore (E.exec e (Printf.sprintf "INSERT INTO big VALUES (%d, 'v')" i))
  done;
  ignore (E.exec e "INSERT INTO small VALUES (1, 'w'), (2, 'w')");
  let sql = "SELECT s.w FROM big b, small s WHERE b.k = s.k" in
  let syntactic = E.explain e sql in
  E.set_join_order e Rdbms.Planner.Greedy;
  let greedy = E.explain e sql in
  E.set_join_order e Rdbms.Planner.Syntactic;
  (* syntactic starts from big; greedy starts from small *)
  let first_scan plan =
    let lines = String.split_on_char '\n' plan in
    List.find_opt (fun l -> Astring.String.is_infix ~affix:"Scan" l) (List.rev lines)
  in
  (match first_scan syntactic with
  | Some l -> Alcotest.(check bool) ("syntactic deepest scan is big: " ^ l) true
      (Astring.String.is_infix ~affix:"big" l || Astring.String.is_infix ~affix:"IndexJoin" syntactic)
  | None -> Alcotest.fail "no scan");
  Alcotest.(check bool) ("greedy picks small first:\n" ^ greedy) true
    (match String.index_opt greedy 's' with _ -> Astring.String.is_infix ~affix:"small" greedy);
  (* and the answers agree *)
  let rows mode =
    E.set_join_order e mode;
    let r = match E.exec e (sql ^ " ORDER BY 1") with
      | E.Rows { rows; _ } -> rows
      | _ -> Alcotest.fail "rows" in
    E.set_join_order e Rdbms.Planner.Syntactic;
    r
  in
  Alcotest.(check int) "same answers" (List.length (rows Rdbms.Planner.Syntactic))
    (List.length (rows Rdbms.Planner.Greedy))

let test_greedy_prefers_filtered_table () =
  let e = fresh () in
  for i = 1 to 50 do
    ignore (E.exec e (Printf.sprintf "INSERT INTO big VALUES (%d, 'v%d')" i i))
  done;
  ignore (E.exec e "INSERT INTO small VALUES (7, 'w')");
  E.set_join_order e Rdbms.Planner.Greedy;
  (* an indexed equality filter makes big cheap, but small is still smaller *)
  let before = Rdbms.Stats.copy (E.stats e) in
  (match E.exec e "SELECT b.v FROM big b, small s WHERE b.k = s.k" with
  | E.Rows { rows; _ } -> Alcotest.(check int) "one match" 1 (List.length rows)
  | _ -> Alcotest.fail "rows");
  let d = Rdbms.Stats.diff (E.stats e) before in
  E.set_join_order e Rdbms.Planner.Syntactic;
  (* greedy drives from small: 1 outer row + 1 index probe, far fewer than
     scanning big's 50 rows *)
  Alcotest.(check bool)
    (Printf.sprintf "few rows read (%d)" d.Rdbms.Stats.rows_read)
    true (d.Rdbms.Stats.rows_read < 25)

let test_explain_rejects_non_select () =
  let e = fresh () in
  Alcotest.(check bool) "explain insert fails" true
    (try
       ignore (E.explain e "INSERT INTO big VALUES (1, 'x')");
       false
     with E.Sql_error _ -> true)

(* A 3-way join with skewed sizes, written largest-first, every join
   column indexed — the shape where the three planners genuinely diverge. *)
let skewed () =
  let e = E.create () in
  let x sql = ignore (E.exec e sql) in
  x "CREATE TABLE big (bk integer, bv integer)";
  x "CREATE TABLE mid (mk integer, bk integer, sk integer)";
  x "CREATE TABLE small (sk integer, sv integer)";
  for i = 0 to 299 do
    x (Printf.sprintf "INSERT INTO big VALUES (%d, %d)" i (i mod 50))
  done;
  for i = 0 to 99 do
    x (Printf.sprintf "INSERT INTO mid VALUES (%d, %d, %d)" i (i * 3) (i mod 12))
  done;
  for i = 0 to 11 do
    x (Printf.sprintf "INSERT INTO small VALUES (%d, %d)" i (i mod 10))
  done;
  x "CREATE INDEX idx_big_bk ON big (bk)";
  x "CREATE INDEX idx_mid_bk ON mid (bk)";
  x "CREATE INDEX idx_mid_sk ON mid (sk)";
  x "CREATE INDEX idx_small_sk ON small (sk)";
  x "ANALYZE";
  e

let skewed_sql =
  "SELECT b.bv FROM big b, mid m, small s WHERE b.bk = m.bk AND m.sk = s.sk AND s.sv = 0"

let test_costed_golden_plans () =
  let e = skewed () in
  let plan mode =
    E.set_join_order e mode;
    let p = E.explain e skewed_sql in
    E.set_join_order e Rdbms.Planner.Syntactic;
    p
  in
  Alcotest.(check string) "syntactic golden plan"
    "Project [b.bv]\n\
    \  HashJoin keys=[4]=[0]\n\
    \    IndexJoin mid via idx_mid_bk probe=col0\n\
    \      SeqScan big\n\
    \    SeqScan small filter=[s.sv = 0]\n"
    (plan Rdbms.Planner.Syntactic);
  Alcotest.(check string) "greedy golden plan"
    "Project [b.bv]\n\
    \  IndexJoin big via idx_big_bk probe=col3\n\
    \    IndexJoin mid via idx_mid_sk probe=col0\n\
    \      SeqScan small filter=[s.sv = 0]\n"
    (plan Rdbms.Planner.Greedy);
  (* the costed planner drops every per-row index probe in favour of
     scans of the small tables, and builds the final hash table on the
     smaller (left, post-join) side *)
  Alcotest.(check string) "costed golden plan"
    "Project [b.bv]\n\
    \  HashJoin keys=[1]=[0] build=left\n\
    \    HashJoin keys=[2]=[0]\n\
    \      SeqScan mid\n\
    \      SeqScan small filter=[s.sv = 0]\n\
    \    SeqScan big\n"
    (plan Rdbms.Planner.Costed)

let test_costed_deterministic_and_correct () =
  let e = skewed () in
  E.set_join_order e Rdbms.Planner.Costed;
  Alcotest.(check string) "same plan on replan" (E.explain e skewed_sql)
    (E.explain e skewed_sql);
  let count mode =
    E.set_join_order e mode;
    match E.exec e skewed_sql with
    | E.Rows { rows; _ } -> List.length rows
    | _ -> Alcotest.fail "rows"
  in
  let costed = count Rdbms.Planner.Costed in
  let syntactic = count Rdbms.Planner.Syntactic in
  Alcotest.(check int) "same answers as syntactic" syntactic costed;
  Alcotest.(check bool) "non-empty" true (costed > 0)

let test_greedy_tie_breaks_on_from_order () =
  (* identical twin tables: every cardinality estimate ties, so greedy
     must fall back to FROM order (and stay deterministic) *)
  let e = E.create () in
  let x sql = ignore (E.exec e sql) in
  x "CREATE TABLE t1 (k integer, v char)";
  x "CREATE TABLE t2 (k integer, v char)";
  x "INSERT INTO t1 VALUES (1, 'a'), (2, 'b')";
  x "INSERT INTO t2 VALUES (1, 'c'), (2, 'd')";
  E.set_join_order e Rdbms.Planner.Greedy;
  let plan = E.explain e "SELECT t2.v FROM t2, t1 WHERE t2.k = t1.k" in
  (* the driving table is the join's left input — the first Scan line *)
  let driver =
    List.find_opt
      (fun l -> Astring.String.is_infix ~affix:"Scan" l)
      (String.split_on_char '\n' plan)
  in
  match driver with
  | Some l ->
      Alcotest.(check bool) ("drives from t2:\n" ^ plan) true
        (Astring.String.is_infix ~affix:"t2" l)
  | None -> Alcotest.fail "no scan in plan"

let test_greedy_empty_table_estimates () =
  (* an empty, filtered, indexed table exercises the >= 1 clamp in
     estimated_rows: planning must neither divide to zero nor error *)
  let e = fresh () in
  ignore (E.exec e "INSERT INTO big VALUES (1, 'x')");
  E.set_join_order e Rdbms.Planner.Greedy;
  match E.exec e "SELECT b.v FROM big b, small s WHERE b.k = s.k AND s.k = 3 AND s.w = 'y'" with
  | E.Rows { rows; _ } -> Alcotest.(check int) "empty join result" 0 (List.length rows)
  | _ -> Alcotest.fail "rows"

let () =
  Alcotest.run "planner"
    [
      ( "operator choice",
        [
          Alcotest.test_case "index scan on eq const" `Quick test_index_scan_on_eq_const;
          Alcotest.test_case "seq scan without index" `Quick test_seq_scan_without_index;
          Alcotest.test_case "index join" `Quick test_index_join_when_indexed;
          Alcotest.test_case "hash join fallback" `Quick test_hash_join_without_index;
          Alcotest.test_case "local filter declines index join" `Quick
            test_index_join_declined_with_local_filter;
          Alcotest.test_case "cross join" `Quick test_cross_join_is_nested_loop;
          Alcotest.test_case "non-equi join" `Quick test_non_equi_join_residual;
          Alcotest.test_case "anti join" `Quick test_anti_join;
          Alcotest.test_case "distinct and sort" `Quick test_distinct_and_sort_nodes;
          Alcotest.test_case "three-way join" `Quick test_three_way_join;
          Alcotest.test_case "explain non-select" `Quick test_explain_rejects_non_select;
          Alcotest.test_case "greedy join order" `Quick test_greedy_join_order;
          Alcotest.test_case "greedy drives from filtered" `Quick test_greedy_prefers_filtered_table;
        ] );
      ( "costed",
        [
          Alcotest.test_case "golden plans" `Quick test_costed_golden_plans;
          Alcotest.test_case "deterministic and correct" `Quick
            test_costed_deterministic_and_correct;
          Alcotest.test_case "greedy tie-break on FROM order" `Quick
            test_greedy_tie_breaks_on_from_order;
          Alcotest.test_case "empty-table estimates" `Quick test_greedy_empty_table_estimates;
        ] );
    ]
