(* Unit tests for Relation, Index and Catalog. *)

module V = Rdbms.Value
module D = Rdbms.Datatype
module S = Rdbms.Schema
module R = Rdbms.Relation
module I = Rdbms.Index
module C = Rdbms.Catalog

let schema2 = S.make [ ("a", D.TInt); ("b", D.TStr) ]

let row i s = [| V.Int i; V.Str s |]

let test_insert_set_semantics () =
  let r = R.create schema2 in
  Alcotest.(check bool) "new" true (R.insert r (row 1 "x"));
  Alcotest.(check bool) "dup" false (R.insert r (row 1 "x"));
  Alcotest.(check int) "cardinal" 1 (R.cardinal r);
  Alcotest.(check bool) "mem" true (R.mem r (row 1 "x"))

let test_insert_validates () =
  let r = R.create schema2 in
  Alcotest.(check bool) "bad arity raises" true
    (try
       ignore (R.insert r [| V.Int 1 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad type raises" true
    (try
       ignore (R.insert r [| V.Str "x"; V.Str "y" |]);
       false
     with Invalid_argument _ -> true)

let test_delete () =
  let r = R.create schema2 in
  ignore (R.insert r (row 1 "x"));
  ignore (R.insert r (row 2 "y"));
  Alcotest.(check bool) "deleted" true (R.delete r (row 1 "x"));
  Alcotest.(check bool) "absent" false (R.delete r (row 1 "x"));
  Alcotest.(check int) "cardinal" 1 (R.cardinal r);
  Alcotest.(check (list string)) "iteration skips tombstones" [ "(2, y)" ]
    (List.map Rdbms.Tuple.to_string (R.to_list r))

let test_insertion_order () =
  let r = R.create schema2 in
  let rows = [ row 3 "c"; row 1 "a"; row 2 "b" ] in
  List.iter (fun x -> ignore (R.insert r x)) rows;
  Alcotest.(check (list string)) "insertion order"
    (List.map Rdbms.Tuple.to_string rows)
    (List.map Rdbms.Tuple.to_string (R.to_list r))

let test_bytes_and_pages () =
  let r = R.create schema2 in
  Alcotest.(check int) "empty bytes" 0 (R.byte_size r);
  Alcotest.(check int) "empty is zero pages" 0 (R.pages r);
  ignore (R.insert r (row 1 "abc"));
  (* 4 header + 4 int + 3 str *)
  Alcotest.(check int) "bytes" 11 (R.byte_size r);
  Alcotest.(check int) "one page once non-empty" 1 (R.pages r);
  ignore (R.delete r (row 1 "abc"));
  Alcotest.(check int) "bytes restored" 0 (R.byte_size r)

let test_clear () =
  let r = R.create schema2 in
  ignore (R.insert r (row 1 "x"));
  R.clear r;
  Alcotest.(check int) "empty" 0 (R.cardinal r);
  Alcotest.(check bool) "reinsert ok" true (R.insert r (row 1 "x"))

let test_observer_order () =
  (* registration is O(1) (cons); notification order is unspecified but
     currently most-recently-registered first — pin it so a change is
     deliberate *)
  let r = R.create schema2 in
  let trace = ref [] in
  R.on_insert r (fun _ _ -> trace := "first" :: !trace);
  R.on_insert r (fun _ _ -> trace := "second" :: !trace);
  ignore (R.insert r (row 1 "x"));
  Alcotest.(check (list string)) "most-recent first" [ "second"; "first" ] (List.rev !trace);
  trace := [];
  R.on_clear r (fun () -> trace := "clear_a" :: !trace);
  R.on_clear r (fun () -> trace := "clear_b" :: !trace);
  R.clear r;
  Alcotest.(check (list string)) "clear order" [ "clear_b"; "clear_a" ] (List.rev !trace)

(* ---------------- index ---------------- *)

let test_index_lookup () =
  let r = R.create schema2 in
  ignore (R.insert r (row 1 "x"));
  ignore (R.insert r (row 2 "x"));
  ignore (R.insert r (row 3 "y"));
  let idx = I.create ~name:"i_b" r ~column:"b" in
  Alcotest.(check int) "x count" 2 (I.lookup_count idx (V.Str "x"));
  Alcotest.(check int) "distinct keys" 2 (I.distinct_keys idx);
  Alcotest.(check (list string)) "insertion order" [ "(1, x)"; "(2, x)" ]
    (List.map Rdbms.Tuple.to_string (I.lookup idx (V.Str "x")));
  Alcotest.(check (list string)) "miss" [] (List.map Rdbms.Tuple.to_string (I.lookup idx (V.Str "z")))

let test_index_tracks_changes () =
  let r = R.create schema2 in
  let idx = I.create ~name:"i_a" r ~column:"a" in
  ignore (R.insert r (row 1 "x"));
  Alcotest.(check int) "after insert" 1 (I.lookup_count idx (V.Int 1));
  ignore (R.delete r (row 1 "x"));
  Alcotest.(check int) "after delete" 0 (I.lookup_count idx (V.Int 1));
  ignore (R.insert r (row 1 "x"));
  R.clear r;
  Alcotest.(check int) "after clear" 0 (I.lookup_count idx (V.Int 1))

let test_index_bad_column () =
  let r = R.create schema2 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (I.create ~name:"i" r ~column:"nope");
       false
     with Invalid_argument _ -> true)

(* ---------------- catalog ---------------- *)

let test_catalog_tables () =
  let c = C.create () in
  (match C.create_table c "t1" schema2 with Ok _ -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "exists case-insensitive" true (C.table_exists c "T1");
  Alcotest.(check bool) "dup rejected" true (Result.is_error (C.create_table c "T1" schema2));
  (match C.drop_table c "t1" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "gone" false (C.table_exists c "t1");
  Alcotest.(check bool) "drop missing" true (Result.is_error (C.drop_table c "t1"))

let test_catalog_indexes () =
  let c = C.create () in
  (match C.create_table c "t" schema2 with Ok _ -> () | Error e -> Alcotest.fail e);
  (match C.create_index c ~name:"ix" ~table:"t" ~column:"a" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "found" true (C.find_index c ~table:"t" ~column:"A" <> None);
  Alcotest.(check bool) "dup name" true
    (Result.is_error (C.create_index c ~name:"ix" ~table:"t" ~column:"b"));
  Alcotest.(check bool) "bad column" true
    (Result.is_error (C.create_index c ~name:"ix2" ~table:"t" ~column:"zz"));
  (match C.drop_index c "IX" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "dropped" true (C.find_index c ~table:"t" ~column:"a" = None)

let test_catalog_version () =
  let c = C.create () in
  let v0 = C.version c in
  (match C.create_table c "t" schema2 with Ok _ -> () | Error e -> Alcotest.fail e);
  let v1 = C.version c in
  Alcotest.(check bool) "create table bumps" true (v1 > v0);
  (match C.create_index c ~name:"ix" ~table:"t" ~column:"a" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let v2 = C.version c in
  Alcotest.(check bool) "create index bumps" true (v2 > v1);
  (* clearing rows is not a schema change *)
  R.clear (C.find_table_exn c "t").C.tbl_relation;
  Alcotest.(check int) "clear does not bump" v2 (C.version c);
  (match C.drop_index c "ix" with Ok () -> () | Error e -> Alcotest.fail e);
  (match C.drop_table c "t" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "drops bump" true (C.version c > v2)

let test_catalog_drop_table_drops_indexes () =
  let c = C.create () in
  (match C.create_table c "t" schema2 with Ok _ -> () | Error e -> Alcotest.fail e);
  (match C.create_index c ~name:"ix" ~table:"t" ~column:"a" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match C.drop_table c "t" with Ok () -> () | Error e -> Alcotest.fail e);
  (* index name is free again *)
  (match C.create_table c "t" schema2 with Ok _ -> () | Error e -> Alcotest.fail e);
  match C.create_index c ~name:"ix" ~table:"t" ~column:"a" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "relation"
    [
      ( "relation",
        [
          Alcotest.test_case "set semantics" `Quick test_insert_set_semantics;
          Alcotest.test_case "schema validation" `Quick test_insert_validates;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "insertion order" `Quick test_insertion_order;
          Alcotest.test_case "bytes and pages" `Quick test_bytes_and_pages;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "observer order" `Quick test_observer_order;
        ] );
      ( "index",
        [
          Alcotest.test_case "lookup" `Quick test_index_lookup;
          Alcotest.test_case "tracks changes" `Quick test_index_tracks_changes;
          Alcotest.test_case "bad column" `Quick test_index_bad_column;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "tables" `Quick test_catalog_tables;
          Alcotest.test_case "indexes" `Quick test_catalog_indexes;
          Alcotest.test_case "version" `Quick test_catalog_version;
          Alcotest.test_case "drop table drops indexes" `Quick test_catalog_drop_table_drops_indexes;
        ] );
    ]
