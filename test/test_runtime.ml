(* End-to-end evaluation tests: naive and semi-naive LFP against an
   in-memory reference, negation, mutual recursion, boolean goals and
   derived predicates with facts. *)

module A = Datalog.Ast
module P = Datalog.Parser
module V = Rdbms.Value
module Session = Core.Session

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let session_with edges rules =
  let s = Session.create () in
  ok (Workload.Queries.setup_edge s edges);
  ok (Session.load_rules s rules);
  s

let sorted_pairs rows =
  rows
  |> List.map (fun r ->
         match r with
         | [| V.Int a; V.Int b |] -> (a, b)
         | [| V.Int a |] -> (a, -1)
         | _ -> Alcotest.fail "unexpected row shape")
  |> List.sort compare

let run_rows s ?(options = Session.default_options) goal =
  let a = ok (Session.query_goal s ~options goal) in
  sorted_pairs a.Session.run.Core.Runtime.rows

(* in-memory reference transitive closure *)
let ref_tc edges =
  let nodes = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  let reach = Hashtbl.create 16 in
  List.iter (fun (a, b) -> Hashtbl.replace reach (a, b) ()) edges;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if not (Hashtbl.mem reach (a, b)) then
              if
                List.exists
                  (fun z -> Hashtbl.mem reach (a, z) && Hashtbl.mem reach (z, b))
                  nodes
              then begin
                Hashtbl.replace reach (a, b) ();
                changed := true
              end)
          nodes)
      nodes
  done;
  Hashtbl.fold (fun k () acc -> k :: acc) reach [] |> List.sort compare

let tc_all_goal = A.atom "tc" [ A.Var "X"; A.Var "Y" ]

let test_tc_small () =
  let edges = [ (1, 2); (2, 3); (3, 4) ] in
  let s = session_with edges Workload.Queries.tc_rules in
  Alcotest.(check (list (pair int int))) "closure" (ref_tc edges) (run_rows s tc_all_goal)

let test_tc_cycle () =
  let edges = [ (1, 2); (2, 3); (3, 1) ] in
  let s = session_with edges Workload.Queries.tc_rules in
  Alcotest.(check (list (pair int int))) "cyclic closure terminates" (ref_tc edges)
    (run_rows s tc_all_goal)

let test_tc_self_loop () =
  let edges = [ (1, 1); (1, 2) ] in
  let s = session_with edges Workload.Queries.tc_rules in
  Alcotest.(check (list (pair int int))) "self loop" (ref_tc edges) (run_rows s tc_all_goal)

let test_empty_base () =
  let s = session_with [] Workload.Queries.tc_rules in
  Alcotest.(check (list (pair int int))) "empty" [] (run_rows s tc_all_goal)

let test_nonlinear_rules () =
  (* tc defined with the nonlinear doubling rule *)
  let rules = "t(X, Y) :- edge(X, Y). t(X, Y) :- t(X, Z), t(Z, Y)." in
  let edges = [ (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let s = session_with edges rules in
  Alcotest.(check (list (pair int int))) "nonlinear = linear closure" (ref_tc edges)
    (run_rows s (A.atom "t" [ A.Var "X"; A.Var "Y" ]))

let test_mutual_recursion () =
  (* even/odd path lengths from node 1 *)
  let rules =
    {| evenp(X, Y) :- edge(X, Z), oddp(Z, Y).
       evenp(X, X) :- node(X).
       oddp(X, Y) :- edge(X, Y).
       oddp(X, Y) :- edge(X, Z), evenp(Z, Y), node(X). |}
  in
  let s = Session.create () in
  ok (Workload.Queries.setup_edge s [ (1, 2); (2, 3); (3, 4) ]);
  ok (Session.define_base s "node" [ ("n", Rdbms.Datatype.TInt) ] ());
  ignore (ok (Session.add_facts s "node" (List.map (fun i -> [ V.Int i ]) [ 1; 2; 3; 4 ])));
  ok (Session.load_rules s rules);
  let odd = run_rows s (A.atom "oddp" [ A.Const (V.Int 1); A.Var "Y" ]) in
  Alcotest.(check (list (pair int int))) "odd paths from 1" [ (2, -1); (4, -1) ]
    (List.map (fun (y, _) -> (y, -1)) odd);
  let even = run_rows s (A.atom "evenp" [ A.Const (V.Int 1); A.Var "Y" ]) in
  Alcotest.(check (list int)) "even paths from 1" [ 1; 3 ] (List.map fst even)

let test_strategies_agree_exact () =
  let edges = [ (1, 2); (2, 3); (2, 4); (4, 1); (5, 5) ] in
  let s = session_with edges Workload.Queries.tc_rules in
  let semi = run_rows s tc_all_goal in
  let naive =
    run_rows s ~options:{ Session.default_options with strategy = Core.Runtime.Naive } tc_all_goal
  in
  Alcotest.(check (list (pair int int))) "naive = semi-naive" semi naive;
  Alcotest.(check (list (pair int int))) "= reference" (ref_tc edges) semi

let test_boolean_goal () =
  let s = session_with [ (1, 2); (2, 3) ] Workload.Queries.tc_rules in
  let yes = ok (Session.query_goal s (A.atom "tc" [ A.Const (V.Int 1); A.Const (V.Int 3) ])) in
  Alcotest.(check (option bool)) "1 reaches 3" (Some true) yes.Session.run.Core.Runtime.boolean;
  let no = ok (Session.query_goal s (A.atom "tc" [ A.Const (V.Int 3); A.Const (V.Int 1) ])) in
  Alcotest.(check (option bool)) "3 not 1" (Some false) no.Session.run.Core.Runtime.boolean

let test_negation_difference () =
  (* unreachable(X) : nodes 1 cannot reach *)
  let rules =
    {| tc(X, Y) :- edge(X, Y).
       tc(X, Y) :- edge(X, Z), tc(Z, Y).
       unreachable(Y) :- node(Y), not tc(one, Y). |}
  in
  let s = Session.create () in
  ok
    (Session.define_base s "edge"
       [ ("src", Rdbms.Datatype.TStr); ("dst", Rdbms.Datatype.TStr) ]
       ~indexes:[ "src" ] ());
  ok (Session.define_base s "node" [ ("n", Rdbms.Datatype.TStr) ] ());
  let e a b = [ V.Str a; V.Str b ] in
  ignore (ok (Session.add_facts s "edge" [ e "one" "two"; e "two" "three"; e "four" "five" ]));
  ignore
    (ok
       (Session.add_facts s "node"
          (List.map (fun n -> [ V.Str n ]) [ "one"; "two"; "three"; "four"; "five" ])));
  ok (Session.load_rules s rules);
  let a = ok (Session.query_goal s (A.atom "unreachable" [ A.Var "X" ])) in
  let got =
    List.map (fun r -> V.to_string r.(0)) a.Session.run.Core.Runtime.rows |> List.sort compare
  in
  Alcotest.(check (list string)) "negation via NOT EXISTS" [ "five"; "four"; "one" ] got

let test_derived_pred_with_facts () =
  (* a derived predicate defined by both facts and rules *)
  let rules = {| vip(boss).
                 vip(X) :- reports(X, Y), vip(Y). |}
  in
  let s = Session.create () in
  ok
    (Session.define_base s "reports"
       [ ("who", Rdbms.Datatype.TStr); ("to_", Rdbms.Datatype.TStr) ]
       ());
  ignore
    (ok
       (Session.add_facts s "reports"
          [ [ V.Str "alice"; V.Str "boss" ]; [ V.Str "bob"; V.Str "alice" ] ]));
  ok (Session.load_rules s rules);
  let a = ok (Session.query_goal s (A.atom "vip" [ A.Var "X" ])) in
  let got =
    List.map (fun r -> V.to_string r.(0)) a.Session.run.Core.Runtime.rows |> List.sort compare
  in
  Alcotest.(check (list string)) "facts + rules" [ "alice"; "bob"; "boss" ] got

let test_report_metadata () =
  let s = session_with [ (1, 2); (2, 3); (3, 4) ] Workload.Queries.tc_rules in
  let a = ok (Session.query_goal s tc_all_goal) in
  let run = a.Session.run in
  (match run.Core.Runtime.iterations with
  | [ (_, iters) ] -> Alcotest.(check bool) "iterations >= path length" true (iters >= 3)
  | _ -> Alcotest.fail "expected one clique");
  Alcotest.(check bool) "exec time recorded" true (run.Core.Runtime.exec_ms > 0.0);
  Alcotest.(check bool) "temp tables created" true
    (run.Core.Runtime.io.Rdbms.Stats.tables_created > 0);
  Alcotest.(check bool) "temp tables dropped" true
    (run.Core.Runtime.io.Rdbms.Stats.tables_dropped
    = run.Core.Runtime.io.Rdbms.Stats.tables_created);
  Alcotest.(check (list string)) "columns are goal variables" [ "x"; "y" ]
    run.Core.Runtime.columns

let test_index_derived_same_answers () =
  let edges = [ (1, 2); (2, 3); (3, 4); (4, 2) ] in
  let s = session_with edges Workload.Queries.tc_rules in
  let plain = run_rows s tc_all_goal in
  let indexed =
    run_rows s ~options:{ Session.default_options with index_derived = true } tc_all_goal
  in
  Alcotest.(check (list (pair int int))) "indexing changes nothing" plain indexed

let test_iteration_profile () =
  (* Two-level binary tree: 1 -> {2,3}, 2 -> {4,5}, 3 -> {6,7}.
     same_generation's exit rule seeds 12 same-parent pairs (including
     the reflexive ones) before the loop; semi-naive iteration 1 then
     derives the 8 cousin pairs {4,5}x{6,7} in both orders, and
     iteration 2 finds nothing new and terminates. *)
  let s = Session.create () in
  ok (Workload.Queries.setup_parent s [ (1, 2); (1, 3); (2, 4); (2, 5); (3, 6); (3, 7) ]);
  ok (Session.load_rules s Workload.Queries.same_generation_rules);
  let a = ok (Session.query_goal s (A.atom "sg" [ A.Var "X"; A.Var "Y" ])) in
  let run = a.Session.run in
  Alcotest.(check int) "12 seeded + 8 derived answers" 20
    (List.length run.Core.Runtime.rows);
  let profile = run.Core.Runtime.profile in
  Alcotest.(check (list (list (pair string int))))
    "hand-computed per-iteration deltas"
    [ [ ("sg", 8) ]; [ ("sg", 0) ] ]
    (List.map (fun ip -> ip.Core.Runtime.ip_deltas) profile);
  Alcotest.(check (list (pair string int))) "iteration numbering"
    [ ("clique(sg)", 1); ("clique(sg)", 2) ]
    (List.map (fun ip -> (ip.Core.Runtime.ip_label, ip.Core.Runtime.ip_index)) profile);
  List.iter
    (fun ip ->
      Alcotest.(check (list string)) "all four phase buckets, in order"
        [ "create_drop"; "eval"; "termination"; "copy" ]
        (List.map fst ip.Core.Runtime.ip_phase_io);
      let bucket_io = List.fold_left (fun acc (_, n) -> acc + n) 0 ip.Core.Runtime.ip_phase_io in
      Alcotest.(check int) "phase buckets account for the iteration's I/O"
        (Rdbms.Stats.total_io ip.Core.Runtime.ip_io)
        bucket_io;
      Alcotest.(check bool) "iteration wall time recorded" true (ip.Core.Runtime.ip_ms >= 0.0))
    profile;
  (* a terminating iteration still pays for its (empty) delta evaluation *)
  (match profile with
  | [ first; last ] ->
      Alcotest.(check bool) "productive iteration costs more I/O" true
        (Rdbms.Stats.total_io first.Core.Runtime.ip_io
        > Rdbms.Stats.total_io last.Core.Runtime.ip_io)
  | _ -> Alcotest.fail "expected exactly two iterations")

let test_profile_matches_iteration_counts () =
  let edges = [ (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let s = session_with edges Workload.Queries.tc_rules in
  let a = ok (Session.query_goal s tc_all_goal) in
  let run = a.Session.run in
  let counted =
    List.map
      (fun (label, n) ->
        ( label,
          List.length
            (List.filter (fun ip -> ip.Core.Runtime.ip_label = label) run.Core.Runtime.profile),
          n ))
      run.Core.Runtime.iterations
  in
  List.iter
    (fun (label, profiled, reported) ->
      Alcotest.(check int) (label ^ " profile entries = iteration count") reported profiled)
    counted

(* ---------------- properties ---------------- *)

let gen_edges = QCheck2.Gen.(list_size (int_range 0 25) (pair (int_bound 8) (int_bound 8)))

let prop_strategies_and_reference =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"naive = semi-naive = reference closure" gen_edges
       (fun edges ->
         let s = session_with edges Workload.Queries.tc_rules in
         let semi = run_rows s tc_all_goal in
         let naive =
           run_rows s
             ~options:{ Session.default_options with strategy = Core.Runtime.Naive }
             tc_all_goal
         in
         semi = naive && semi = ref_tc edges))

let prop_bound_query_is_slice =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"tc(c, W) = slice of full closure"
       QCheck2.Gen.(pair gen_edges (int_bound 8))
       (fun (edges, c) ->
         let s = session_with edges Workload.Queries.tc_rules in
         let full = ref_tc edges in
         let expected = List.filter (fun (a, _) -> a = c) full |> List.map snd |> List.sort compare in
         let got = run_rows s (Workload.Queries.tc_goal_from c) |> List.map fst in
         got = expected))

let () =
  Alcotest.run "runtime"
    [
      ( "evaluation",
        [
          Alcotest.test_case "small closure" `Quick test_tc_small;
          Alcotest.test_case "cycles terminate" `Quick test_tc_cycle;
          Alcotest.test_case "self loop" `Quick test_tc_self_loop;
          Alcotest.test_case "empty base" `Quick test_empty_base;
          Alcotest.test_case "nonlinear rules" `Quick test_nonlinear_rules;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "strategies agree" `Quick test_strategies_agree_exact;
          Alcotest.test_case "boolean goals" `Quick test_boolean_goal;
          Alcotest.test_case "stratified negation" `Quick test_negation_difference;
          Alcotest.test_case "derived pred with facts" `Quick test_derived_pred_with_facts;
          Alcotest.test_case "report metadata" `Quick test_report_metadata;
          Alcotest.test_case "derived indexing" `Quick test_index_derived_same_answers;
        ] );
      ( "iteration profile",
        [
          Alcotest.test_case "same_generation deltas" `Quick test_iteration_profile;
          Alcotest.test_case "profile entries = iteration counts" `Quick
            test_profile_matches_iteration_counts;
        ] );
      ("properties", [ prop_strategies_and_reference; prop_bound_query_is_slice ]);
    ]
