(* The wire-protocol server driven end to end: an in-process server
   thread, real TCP clients, concurrent sessions on one engine. *)

module E = Rdbms.Engine
module Server = Dkb_server.Server
module Client = Dkb_server.Client
module Protocol = Dkb_server.Protocol

let ok = function Ok v -> v | Error msg -> Alcotest.fail msg

let with_server f =
  let engine = E.create () in
  let server = Server.create engine in
  let th = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join th)
    (fun () -> f engine (Server.port server))

let connect port = ok (Client.connect ~port ())

let test_protocol_basics () =
  with_server (fun _engine port ->
      let c = connect port in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      ok (Client.ping c);
      ignore (ok (Client.base c "parent" [ ("p", "str"); ("c", "str") ]));
      let r = ok (Client.sql c "INSERT INTO parent VALUES ('john', 'mary'), ('mary', 'sue')") in
      Alcotest.(check (option string)) "affected" (Some "2") (Client.field r "affected");
      let r = ok (Client.sql c "SELECT c FROM parent WHERE p = 'john'") in
      Alcotest.(check (option string)) "rows field" (Some "1") (Client.field r "rows");
      Alcotest.(check (list (list string))) "row payload" [ [ "mary" ] ] (Client.rows r);
      (* parameterized statements *)
      ignore (ok (Client.prepare c "q" "SELECT c FROM parent WHERE p = ?1"));
      let r = ok (Client.exec c "q" [ "mary" ]) in
      Alcotest.(check (list (list string))) "exec rows" [ [ "sue" ] ] (Client.rows r);
      let r = ok (Client.exec c "q" [ "nobody" ]) in
      Alcotest.(check (list (list string))) "exec no rows" [] (Client.rows r);
      (* datalog over the wire *)
      ignore (ok (Client.rule c "anc(X,Y) :- parent(X,Y)."));
      ignore (ok (Client.rule c "anc(X,Y) :- parent(X,Z), anc(Z,Y)."));
      let r = ok (Client.query c "anc(john, W)") in
      Alcotest.(check (option string)) "query answers" (Some "2") (Client.field r "rows");
      (* per-session stats come back with the session id *)
      let r = ok (Client.command c "STATS") in
      Alcotest.(check bool) "sid field present" true (Client.field r "sid" <> None);
      (* protocol-level errors *)
      (match Client.sql c "SELECT nope FROM nothing" with
      | Error msg -> Alcotest.(check bool) "err mentions table" true
          (Astring.String.is_infix ~affix:"nothing" msg)
      | Ok _ -> Alcotest.fail "bad SQL accepted");
      (match Client.command c "FROBNICATE" with
      | Error msg -> Alcotest.(check bool) "unknown keyword refused" true
          (Astring.String.is_infix ~affix:"unknown" msg)
      | Ok _ -> Alcotest.fail "unknown request accepted"))

let test_writer_gating () =
  with_server (fun _engine port ->
      let c1 = connect port in
      let c2 = connect port in
      Fun.protect
        ~finally:(fun () -> Client.close c1; Client.close c2)
        (fun () ->
          ignore (ok (Client.sql c1 "CREATE TABLE t (a integer)"));
          ignore (ok (Client.command c1 "BEGIN"));
          ignore (ok (Client.sql c1 "INSERT INTO t VALUES (1)"));
          (* a second writer is refused, not blocked *)
          (match Client.sql c2 "INSERT INTO t VALUES (2)" with
          | Error msg -> Alcotest.(check bool) "busy" true
              (Astring.String.is_infix ~affix:"busy" msg)
          | Ok _ -> Alcotest.fail "second writer not gated");
          (match Client.command c2 "BEGIN" with
          | Error msg -> Alcotest.(check bool) "busy begin" true
              (Astring.String.is_infix ~affix:"busy" msg)
          | Ok _ -> Alcotest.fail "second BEGIN not gated");
          (* plain reads stay allowed *)
          ignore (ok (Client.sql c2 "SELECT a FROM t"));
          ignore (ok (Client.command c1 "COMMIT"));
          (* gate released *)
          let r = ok (Client.sql c2 "INSERT INTO t VALUES (2)") in
          Alcotest.(check (option string)) "write ok after commit" (Some "1")
            (Client.field r "affected")))

let test_snapshot_over_wire () =
  with_server (fun engine port ->
      let writer = connect port in
      let reader = connect port in
      Fun.protect
        ~finally:(fun () -> Client.close writer; Client.close reader)
        (fun () ->
          ignore (ok (Client.sql writer "CREATE TABLE t (a integer)"));
          ignore (ok (Client.sql writer "INSERT INTO t VALUES (1), (2), (3)"));
          let _ts = ok (Client.begin_snapshot reader) in
          ignore (ok (Client.sql writer "INSERT INTO t VALUES (4)"));
          ignore (ok (Client.sql writer "DELETE FROM t WHERE a = 1"));
          let r = ok (Client.sql reader "SELECT a FROM t") in
          Alcotest.(check (option string)) "snapshot pinned at 3 rows" (Some "3")
            (Client.field r "rows");
          (* snapshots are read-only *)
          (match Client.sql reader "INSERT INTO t VALUES (9)" with
          | Error msg -> Alcotest.(check bool) "read-only" true
              (Astring.String.is_infix ~affix:"read-only" msg)
          | Ok _ -> Alcotest.fail "snapshot write accepted");
          let r = ok (Client.sql writer "SELECT a FROM t") in
          Alcotest.(check (option string)) "writer sees live state" (Some "3")
            (Client.field r "rows");
          ok (Client.commit reader);
          Alcotest.(check int) "versions pruned after release" 0
            (E.snapshot_versions engine)))

let test_disconnect_cleans_up () =
  with_server (fun engine port ->
      let c1 = connect port in
      ignore (ok (Client.sql c1 "CREATE TABLE t (a integer)"));
      ignore (ok (Client.command c1 "BEGIN"));
      ignore (ok (Client.sql c1 "INSERT INTO t VALUES (1)"));
      (* drop the writer mid-transaction: the server must roll it back *)
      Client.close c1;
      let c2 = connect port in
      Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
      (* the rollback happens when the server notices the EOF; retry
         briefly rather than racing it *)
      let rec begin_retry attempts =
        match Client.command c2 "BEGIN" with
        | Ok _ -> ()
        | Error _ when attempts > 0 ->
            Thread.delay 0.05;
            begin_retry (attempts - 1)
        | Error msg -> Alcotest.fail ("BEGIN after writer disconnect: " ^ msg)
      in
      begin_retry 40;
      ignore (ok (Client.command c2 "ROLLBACK"));
      Alcotest.(check int) "uncommitted insert rolled back" 0
        (E.scalar_int engine "SELECT COUNT(*) FROM t");
      (* a dropped snapshot must not pin versions forever *)
      let c3 = connect port in
      ignore (ok (Client.begin_snapshot c3));
      ignore (ok (Client.sql c2 "INSERT INTO t VALUES (5)"));
      Alcotest.(check bool) "snapshot holds a version" true (E.snapshot_versions engine > 0);
      Client.close c3;
      let rec release_retry attempts =
        if E.snapshot_versions engine = 0 then ()
        else if attempts = 0 then Alcotest.fail "disconnected snapshot leaked versions"
        else begin
          ignore (Client.ping c2); (* keep the loop spinning *)
          Thread.delay 0.05;
          release_retry (attempts - 1)
        end
      in
      release_retry 40)

let test_reader_not_blocked_by_lfp () =
  with_server (fun _engine port ->
      let writer = connect port in
      let reader = connect port in
      Fun.protect
        ~finally:(fun () -> Client.close writer; Client.close reader)
        (fun () ->
          ignore (ok (Client.base writer "parent" [ ("p", "str"); ("c", "str") ]));
          let rows =
            String.concat ", "
              (List.init 60 (fun i -> Printf.sprintf "('n%d', 'n%d')" i (i + 1)))
          in
          ignore (ok (Client.sql writer ("INSERT INTO parent VALUES " ^ rows)));
          ignore (ok (Client.rule writer "anc(X,Y) :- parent(X,Y)."));
          ignore (ok (Client.rule writer "anc(X,Y) :- parent(X,Z), anc(Z,Y)."));
          ignore (ok (Client.begin_snapshot reader));
          (* churn so the snapshot holds a frozen version *)
          ignore (ok (Client.sql writer "INSERT INTO parent VALUES ('x', 'y')"));
          (* run the derivation from a second thread, reading from the
             reader connection while it is in flight *)
          let answer = ref None in
          let th =
            Thread.create
              (fun () -> answer := Some (Client.query writer "anc(n0, W)"))
              ()
          in
          let served = ref 0 in
          while !answer = None do
            match Client.sql reader "SELECT COUNT(*) FROM parent" with
            | Ok r ->
                Alcotest.(check (list (list string)))
                  "pinned count mid-derivation" [ [ "60" ] ] (Client.rows r);
                incr served
            | Error msg -> Alcotest.fail ("reader during LFP: " ^ msg)
          done;
          Thread.join th;
          (match !answer with
          | Some (Ok r) ->
              Alcotest.(check (option string)) "derivation answers" (Some "60")
                (Client.field r "rows")
          | Some (Error msg) -> Alcotest.fail msg
          | None -> assert false);
          Alcotest.(check bool) "reader was served while the writer ran" true (!served > 0);
          ok (Client.commit reader)))

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "protocol basics" `Quick test_protocol_basics;
          Alcotest.test_case "writer gating" `Quick test_writer_gating;
          Alcotest.test_case "snapshot over wire" `Quick test_snapshot_over_wire;
          Alcotest.test_case "disconnect cleanup" `Quick test_disconnect_cleans_up;
          Alcotest.test_case "reader not blocked by LFP" `Quick test_reader_not_blocked_by_lfp;
        ] );
    ]
