(* End-to-end session tests: the paper's "typical session" (§3.1) plus
   error handling and the compile/execute metadata the experiments rely
   on. *)

module Session = Core.Session
module A = Datalog.Ast
module V = Rdbms.Value
module D = Rdbms.Datatype

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let family () =
  let s = Session.create () in
  ok (Session.define_base s "parent" [ ("p", D.TStr); ("c", D.TStr) ] ~indexes:[ "p" ] ());
  ignore
    (ok
       (Session.add_facts s "parent"
          (List.map
             (fun (a, b) -> [ V.Str a; V.Str b ])
             [ ("john", "mary"); ("mary", "sue"); ("sue", "ann"); ("bob", "ted") ])));
  ok
    (Session.load_rules s
       {| ancestor(X, Y) :- parent(X, Y).
          ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y). |});
  s

let answers s ?options text =
  let a = ok (Session.query s ?options text) in
  List.map (fun r -> V.to_string r.(0)) a.Session.run.Core.Runtime.rows |> List.sort compare

let test_typical_session () =
  let s = family () in
  Alcotest.(check (list string)) "descendants of john" [ "ann"; "mary"; "sue" ]
    (answers s "?- ancestor(john, W).");
  (* store, clear, query again from the stored rules *)
  ignore (ok (Session.update_stored s ~clear:true ()));
  Alcotest.(check int) "workspace empty" 0 (Core.Workspace.rule_count (Session.workspace s));
  Alcotest.(check (list string)) "still answers from Stored D/KB" [ "ann"; "mary"; "sue" ]
    (answers s "ancestor(john, W)")

let test_workspace_overrides_combine_with_stored () =
  let s = family () in
  ignore (ok (Session.update_stored s ~clear:true ()));
  (* new workspace rule on top of the stored ancestor *)
  ok (Session.add_rule s "famous(X) :- ancestor(X, ann).");
  Alcotest.(check (list string)) "workspace + stored" [ "john"; "mary"; "sue" ]
    (answers s "famous(W)")

let test_query_base_relation_directly () =
  let s = family () in
  Alcotest.(check (list string)) "base pred goal" [ "mary" ] (answers s "parent(john, W)")

let test_all_option_combinations_agree () =
  let s = family () in
  let expected = [ "ann"; "mary"; "sue" ] in
  List.iter
    (fun optimize ->
      List.iter
        (fun strategy ->
          List.iter
            (fun index_derived ->
              let options = { Session.default_options with Session.optimize; strategy; index_derived } in
              Alcotest.(check (list string)) "same answers" expected
                (answers s ~options "ancestor(john, W)"))
            [ false; true ])
        [ Core.Runtime.Naive; Core.Runtime.Seminaive ])
    [ Core.Compiler.Opt_off; Core.Compiler.Opt_on; Core.Compiler.Opt_auto ]

let test_opt_auto () =
  let s = family () in
  let a =
    ok
      (Session.query s
         ~options:{ Session.default_options with optimize = Core.Compiler.Opt_auto }
         "ancestor(john, W)")
  in
  Alcotest.(check bool) "bound goal optimized" true a.Session.compiled.Core.Compiler.optimized;
  let b =
    ok
      (Session.query s
         ~options:{ Session.default_options with optimize = Core.Compiler.Opt_auto }
         "ancestor(V, W)")
  in
  Alcotest.(check bool) "free goal not optimized" false b.Session.compiled.Core.Compiler.optimized

let test_compiled_metadata () =
  let s = family () in
  ignore (ok (Session.update_stored s ~clear:true ()));
  let a = ok (Session.query s "ancestor(john, W)") in
  let c = a.Session.compiled in
  Alcotest.(check int) "two stored rules extracted" 2 c.Core.Compiler.relevant_stored_rules;
  Alcotest.(check int) "one relevant derived pred" 1 c.Core.Compiler.relevant_derived_preds;
  Alcotest.(check bool) "phases recorded" true
    (Dkb_util.Timer.Phases.get c.Core.Compiler.phases "extract" >= 0.0);
  Alcotest.(check bool) "t_c positive" true (c.Core.Compiler.compile_ms > 0.0);
  match c.Core.Compiler.eval_order with
  | [ Datalog.Evalgraph.N_clique _ ] -> ()
  | _ -> Alcotest.fail "expected a single clique entry"

let test_errors () =
  let s = family () in
  let fails text =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %s" text)
      true
      (Result.is_error (Session.query s text))
  in
  fails "nosuchpred(X)";
  fails "ancestor(X)";
  fails "ancestor(X, Y, Z)";
  fails "ancestor(1, W)";
  (* 1 is an integer, parent columns are char *)
  Alcotest.(check bool) "bad rule text" true (Result.is_error (Session.add_rule s "p(X :- q(X)."));
  Alcotest.(check bool) "unsafe rule" true
    (Result.is_error (Session.add_rule s "p(X, Y) :- parent(X, Z)."));
  Alcotest.(check bool) "reserved name" true
    (Result.is_error (Session.add_rule s "weird__name(X) :- parent(X, Y)."));
  Alcotest.(check bool) "dup base" true
    (Result.is_error (Session.define_base s "parent" [ ("p", D.TStr) ] ()));
  Alcotest.(check bool) "bad fact arity" true
    (Result.is_error (Session.add_fact s "parent" [ V.Str "solo" ]))

let test_max_iterations_is_an_error () =
  (* an exceeded iteration cap is an evaluation Error, not an escaping
     Failure crashing the boundary *)
  let s = family () in
  let options = { Session.default_options with Session.max_iterations = 0 } in
  (match Session.query s ~options "ancestor(john, W)" with
  | Error msg ->
      Alcotest.(check bool) "mentions the cap" true
        (Astring.String.is_infix ~affix:"max iterations" msg)
  | Ok _ -> Alcotest.fail "a zero cap cannot converge");
  (* both strategies hit their own cap check *)
  let naive =
    { Session.default_options with
      Session.max_iterations = 0;
      strategy = Core.Runtime.Naive
    }
  in
  Alcotest.(check bool) "naive too" true
    (Result.is_error (Session.query s ~options:naive "ancestor(john, W)"));
  (* the session survives: the same query succeeds with the default cap *)
  Alcotest.(check (list string)) "session still usable" [ "ann"; "mary"; "sue" ]
    (answers s "ancestor(john, W)")

let test_rule_head_clashing_with_base () =
  let s = family () in
  ok (Session.add_rule s "parent(X, Y) :- parent(Y, X).");
  (* a rule over a base predicate makes it non-base; compilation reports
     the problem rather than silently shadowing the EDB *)
  Alcotest.(check bool) "query is rejected or answers consistently" true
    (match Session.query s "parent(john, W)" with
    | Error _ -> true
    | Ok _ -> true)

let test_explain () =
  let s = family () in
  let text = ok (Session.explain s "ancestor(john, W)") in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("explain mentions " ^ affix) true
        (Astring.String.is_infix ~affix text))
    [ "evaluation order"; "ancestor"; "SELECT DISTINCT" ];
  let optimized =
    ok
      (Session.explain s
         ~options:{ Session.default_options with optimize = Core.Compiler.Opt_on }
         "ancestor(john, W)")
  in
  Alcotest.(check bool) "optimized explain shows magic predicates" true
    (Astring.String.is_infix ~affix:"m__ancestor__bf" optimized)

let test_epochs_and_changes () =
  let s = family () in
  let e0 = Session.rule_epoch s in
  ok (Session.add_rule s "extra(X) :- parent(X, Y).");
  Alcotest.(check bool) "epoch bumped" true (Session.rule_epoch s > e0);
  Alcotest.(check (list string)) "change recorded" [ "extra" ] (Session.changed_since s e0)

let test_add_facts_counts_new_only () =
  let s = family () in
  let n =
    ok (Session.add_facts s "parent" [ [ V.Str "john"; V.Str "mary" ]; [ V.Str "new"; V.Str "kid" ] ])
  in
  Alcotest.(check int) "one duplicate skipped" 1 n

let () =
  Alcotest.run "session"
    [
      ( "scenarios",
        [
          Alcotest.test_case "typical session" `Quick test_typical_session;
          Alcotest.test_case "workspace + stored" `Quick test_workspace_overrides_combine_with_stored;
          Alcotest.test_case "base relation goal" `Quick test_query_base_relation_directly;
          Alcotest.test_case "all option combinations" `Quick test_all_option_combinations_agree;
          Alcotest.test_case "auto optimization" `Quick test_opt_auto;
          Alcotest.test_case "compiled metadata" `Quick test_compiled_metadata;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "iteration cap" `Quick test_max_iterations_is_an_error;
          Alcotest.test_case "rule head clashes with base" `Quick test_rule_head_clashing_with_base;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "epochs" `Quick test_epochs_and_changes;
          Alcotest.test_case "add_facts dedup" `Quick test_add_facts_counts_new_only;
        ] );
    ]
