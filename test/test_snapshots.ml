(* Snapshot isolation (MVCC-lite): pinned reads under writer churn,
   version pruning on release, and multi-session coexistence on one
   engine. *)

module E = Rdbms.Engine
module V = Rdbms.Value
module D = Rdbms.Datatype
module Session = Core.Session

let sorted_rows e sql =
  List.sort compare (List.map Array.to_list (E.query e sql))

let snap_rows e ts sql =
  List.sort compare (List.map Array.to_list (E.query_snapshot e ~ts sql))

let setup () =
  let e = E.create () in
  ignore (E.exec e "CREATE TABLE t (a integer, b integer)");
  ignore (E.exec e "CREATE INDEX idx_t_a ON t (a)");
  List.iter
    (fun (a, b) -> ignore (E.exec e (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" a b)))
    [ (1, 10); (2, 20); (3, 30) ];
  e

let test_snapshot_pins_state () =
  let e = setup () in
  let before = sorted_rows e "SELECT a, b FROM t" in
  let ts = E.begin_snapshot e in
  ignore (E.exec e "INSERT INTO t VALUES (4, 40)");
  ignore (E.exec e "DELETE FROM t WHERE a = 1");
  Alcotest.(check bool) "a version was frozen" true (E.snapshot_versions e > 0);
  Alcotest.(check (list (list string)))
    "snapshot sees the pinned state"
    (List.map (List.map V.to_string) before)
    (List.map (List.map V.to_string) (snap_rows e ts "SELECT a, b FROM t"));
  Alcotest.(check int) "live reads see the churn" 3
    (E.scalar_int e "SELECT COUNT(*) FROM t");
  E.release_snapshot e ts;
  Alcotest.(check int) "release prunes every version" 0 (E.snapshot_versions e);
  Alcotest.(check (list string)) "no invariant violations" []
    (List.map Rdbms.Invariants.violation_to_string (E.check_invariants e))

let test_overlapping_snapshots () =
  let e = setup () in
  let ts1 = E.begin_snapshot e in
  ignore (E.exec e "INSERT INTO t VALUES (4, 40)");
  let ts2 = E.begin_snapshot e in
  ignore (E.exec e "INSERT INTO t VALUES (5, 50)");
  ignore (E.exec e "DELETE FROM t WHERE a = 2");
  Alcotest.(check int) "ts1 sees 3 rows" 3
    (List.length (snap_rows e ts1 "SELECT a FROM t"));
  Alcotest.(check int) "ts2 sees 4 rows" 4
    (List.length (snap_rows e ts2 "SELECT a FROM t"));
  Alcotest.(check int) "live sees 4 rows (one deleted)" 4
    (E.scalar_int e "SELECT COUNT(*) FROM t");
  (* release out of order: the older snapshot must stay readable *)
  E.release_snapshot e ts2;
  Alcotest.(check int) "ts1 still sees 3 rows after ts2 released" 3
    (List.length (snap_rows e ts1 "SELECT a FROM t"));
  E.release_snapshot e ts1;
  Alcotest.(check int) "all versions pruned" 0 (E.snapshot_versions e);
  Alcotest.(check int) "no snapshots active" 0 (E.snapshots_active e)

let test_snapshot_rules () =
  let e = setup () in
  let ts = E.begin_snapshot e in
  (* read-only: writes through the snapshot API are refused *)
  (match E.exec_snapshot e ~ts "INSERT INTO t VALUES (9, 90)" with
  | exception E.Sql_error _ -> ()
  | _ -> Alcotest.fail "snapshot write not refused");
  (* double release is an error *)
  E.release_snapshot e ts;
  (match E.release_snapshot e ts with
  | exception E.Sql_error _ -> ()
  | () -> Alcotest.fail "double release not refused");
  (* no snapshot inside an open transaction *)
  E.begin_txn e;
  (match E.begin_snapshot e with
  | exception E.Sql_error _ -> ()
  | _ -> Alcotest.fail "snapshot inside txn not refused");
  E.rollback_txn e

let test_rollback_leaks_nothing () =
  let e = setup () in
  let ts = E.begin_snapshot e in
  E.begin_txn e;
  ignore (E.exec e "INSERT INTO t VALUES (7, 70)");
  ignore (E.exec e "DELETE FROM t WHERE a = 3");
  E.rollback_txn e;
  Alcotest.(check int) "live state restored" 3 (E.scalar_int e "SELECT COUNT(*) FROM t");
  Alcotest.(check int) "snapshot still consistent" 3
    (List.length (snap_rows e ts "SELECT a FROM t"));
  E.release_snapshot e ts;
  Alcotest.(check int) "rollback leaked no versions" 0 (E.snapshot_versions e);
  Alcotest.(check (list string)) "registry audit clean" []
    (List.map Rdbms.Invariants.violation_to_string (E.check_invariants e))

(* DDL during a snapshot: a table created after the snapshot began is
   visible to it (schema is not versioned — only row state is), and a
   frozen table's version survives the live table being truncated. *)
let test_truncate_under_snapshot () =
  let e = setup () in
  let ts = E.begin_snapshot e in
  ignore (E.exec e "TRUNCATE TABLE t");
  Alcotest.(check int) "snapshot still sees 3 rows" 3
    (List.length (snap_rows e ts "SELECT a FROM t"));
  Alcotest.(check int) "live is empty" 0 (E.scalar_int e "SELECT COUNT(*) FROM t");
  E.release_snapshot e ts;
  Alcotest.(check int) "pruned" 0 (E.snapshot_versions e)

(* ---------------- property: interleaved writer churn ---------------- *)

(* A random interleaving of inserts, deletes, snapshot begins/releases
   and reads, mirrored against a pure-OCaml model. Every snapshot must
   read exactly the model state at its begin; when the last snapshot
   releases, zero versions may remain. *)

type op = Insert of int | Delete of int | Begin_snap | Release_snap | Read_snap | Txn_churn

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        (4, map (fun n -> Insert n) (int_bound 30));
        (3, map (fun n -> Delete n) (int_bound 30));
        (2, pure Begin_snap);
        (2, pure Release_snap);
        (3, pure Read_snap);
        (1, pure Txn_churn);
      ])

let prop_interleaved_consistency =
  let gen = QCheck2.Gen.(list_size (int_range 10 60) op_gen) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"snapshots read COMMIT-consistent state under churn" gen
       (fun ops ->
         let e = E.create () in
         ignore (E.exec e "CREATE TABLE t (a integer)");
         let model = Hashtbl.create 16 in
         let snaps = ref [] in (* (ts, pinned model contents) newest first *)
         let model_rows () =
           List.sort compare (Hashtbl.fold (fun k () acc -> [ V.Int k ] :: acc) model [])
         in
         let check_snapshot (ts, pinned) =
           let got = snap_rows e ts "SELECT a FROM t" in
           if got <> pinned then
             QCheck2.Test.fail_reportf "snapshot ts=%d diverged: %d rows vs %d pinned" ts
               (List.length got) (List.length pinned)
         in
         List.iter
           (fun op ->
             match op with
             | Insert n ->
                 ignore (E.exec e (Printf.sprintf "INSERT INTO t VALUES (%d)" n));
                 Hashtbl.replace model n ()
             | Delete n ->
                 ignore (E.exec e (Printf.sprintf "DELETE FROM t WHERE a = %d" n));
                 Hashtbl.remove model n
             | Begin_snap -> snaps := (E.begin_snapshot e, model_rows ()) :: !snaps
             | Release_snap -> (
                 match !snaps with
                 | [] -> ()
                 | s :: rest ->
                     (* verify at the last possible moment, then release *)
                     check_snapshot s;
                     E.release_snapshot e (fst s);
                     snaps := rest)
             | Read_snap -> List.iter check_snapshot !snaps
             | Txn_churn ->
                 (* a rolled-back transaction must be invisible to every
                    snapshot AND to the live state *)
                 E.begin_txn e;
                 ignore (E.exec e "INSERT INTO t VALUES (97)");
                 ignore (E.exec e "DELETE FROM t WHERE a < 5");
                 E.rollback_txn e)
           ops;
         List.iter check_snapshot !snaps;
         List.iter (fun (ts, _) -> E.release_snapshot e ts) !snaps;
         if E.snapshot_versions e <> 0 then
           QCheck2.Test.fail_reportf "released all snapshots but %d versions remain"
             (E.snapshot_versions e);
         (match E.check_invariants e with
         | [] -> ()
         | vs ->
             QCheck2.Test.fail_reportf "invariants: %s"
               (String.concat "; " (List.map Rdbms.Invariants.violation_to_string vs)));
         E.scalar_int e "SELECT COUNT(*) FROM t" = List.length (model_rows ())))

(* ---------------- snapshots vs the LFP writer ---------------- *)

(* A session derives ancestor/2 over a chain while a second session holds
   a snapshot. The snapshot read, taken mid-derivation from the LFP
   iteration observer, must still see the pre-derivation base state. *)
let test_snapshot_during_lfp () =
  let writer = Session.create () in
  let engine = Session.engine writer in
  let reader = Session.of_engine engine in
  (match Session.define_base writer "parent" [ ("p", D.TStr); ("c", D.TStr) ] () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let chain = List.init 30 (fun i -> [ V.Str (Printf.sprintf "n%d" i); V.Str (Printf.sprintf "n%d" (i + 1)) ]) in
  (match Session.add_facts writer "parent" chain with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  (match Session.load_rules writer "anc(X,Y) :- parent(X,Y). anc(X,Y) :- parent(X,Z), anc(Z,Y)." with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let ts = match Session.begin_snapshot reader with Ok ts -> ts | Error m -> Alcotest.fail m in
  let mid_reads = ref [] in
  let pump _ip =
    (* a mid-LFP write beside the derivation: the snapshot must not see it *)
    (match Session.snapshot_query reader ~ts "SELECT COUNT(*) FROM parent" with
    | Ok (_, [ [| V.Int n |] ]) -> mid_reads := n :: !mid_reads
    | Ok _ -> Alcotest.fail "bad snapshot count shape"
    | Error msg -> Alcotest.fail ("snapshot read during LFP: " ^ msg))
  in
  (* churn the base table from the writer session first, so the snapshot
     actually pins a frozen version *)
  (match Session.add_facts writer "parent" [ [ V.Str "extra"; V.Str "row" ] ] with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  (match Session.query writer ~on_iteration:pump "anc(n0, W)" with
  | Ok answer ->
      let _, rows = Session.answer_rows answer in
      Alcotest.(check int) "derivation answers" 30 (List.length rows)
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "snapshot reads happened mid-derivation" true (!mid_reads <> []);
  List.iter
    (fun n -> Alcotest.(check int) "mid-LFP snapshot read pinned at 30" 30 n)
    !mid_reads;
  (match Session.end_snapshot reader ts with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "no leaked versions" 0 (E.snapshot_versions engine)

(* ---------------- multi-session differential ---------------- *)

(* Two sessions interleaved on one engine must produce the same D/KB as
   one session doing all the work, and their per-session stats must
   split the engine totals. *)
let test_two_sessions_differential () =
  let a = Session.create () in
  let engine = Session.engine a in
  let b = Session.of_engine engine in
  Alcotest.(check bool) "distinct session ids" true
    (Session.session_id a <> Session.session_id b);
  (match Session.define_base a "parent" [ ("p", D.TStr); ("c", D.TStr) ] () with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let a_stmts_before = (Session.db_stats a).Rdbms.Stats.statements in
  (match Session.add_facts a "parent" [ [ V.Str "john"; V.Str "mary" ] ] with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Session.add_facts b "parent" [ [ V.Str "mary"; V.Str "sue" ] ] with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Session.load_rules b "anc(X,Y) :- parent(X,Y). anc(X,Y) :- parent(X,Z), anc(Z,Y)." with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* session B's rules live in B's workspace; A queries its own (empty)
     workspace but the same base data *)
  (match Session.query b "anc(john, W)" with
  | Ok answer ->
      let _, rows = Session.answer_rows answer in
      Alcotest.(check int) "b sees both sessions' facts" 2 (List.length rows)
  | Error m -> Alcotest.fail m);
  (* the twin: one session, same operations *)
  let solo = Session.create () in
  (match Session.define_base solo "parent" [ ("p", D.TStr); ("c", D.TStr) ] () with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match
     Session.add_facts solo "parent"
       [ [ V.Str "john"; V.Str "mary" ]; [ V.Str "mary"; V.Str "sue" ] ]
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Session.load_rules solo "anc(X,Y) :- parent(X,Y). anc(X,Y) :- parent(X,Z), anc(Z,Y)." with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match (Session.query b "anc(john, W)", Session.query solo "anc(john, W)") with
  | Ok shared, Ok alone ->
      let _, r1 = Session.answer_rows shared in
      let _, r2 = Session.answer_rows alone in
      Alcotest.(check (list (list string)))
        "two interleaved sessions match the solo twin"
        (List.sort compare (List.map (fun r -> Array.to_list (Array.map V.to_string r)) r2))
        (List.sort compare (List.map (fun r -> Array.to_list (Array.map V.to_string r)) r1))
  | Error m, _ | _, Error m -> Alcotest.fail m);
  (* per-session charging: A's statement counter moved only for A's work *)
  let a_stmts = (Session.db_stats a).Rdbms.Stats.statements - a_stmts_before in
  let b_stmts = (Session.db_stats b).Rdbms.Stats.statements in
  Alcotest.(check bool) "a charged for its insert" true (a_stmts >= 1);
  Alcotest.(check bool) "b charged much more (rules + queries)" true (b_stmts > a_stmts);
  let total = (Session.engine_stats a).Rdbms.Stats.statements in
  Alcotest.(check bool) "engine total covers both sessions" true
    (total >= a_stmts + b_stmts);
  (* with the engine quiescent, the full audit must be clean *)
  Alcotest.(check (list string)) "shared-engine invariants" []
    (List.map Rdbms.Invariants.violation_to_string (E.check_invariants engine))

let () =
  Alcotest.run "snapshots"
    [
      ( "mvcc",
        [
          Alcotest.test_case "snapshot pins state" `Quick test_snapshot_pins_state;
          Alcotest.test_case "overlapping snapshots" `Quick test_overlapping_snapshots;
          Alcotest.test_case "snapshot rules" `Quick test_snapshot_rules;
          Alcotest.test_case "rollback leaks nothing" `Quick test_rollback_leaks_nothing;
          Alcotest.test_case "truncate under snapshot" `Quick test_truncate_under_snapshot;
          prop_interleaved_consistency;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "snapshot read during LFP" `Quick test_snapshot_during_lfp;
          Alcotest.test_case "two sessions differential" `Quick test_two_sessions_differential;
        ] );
    ]
