(* Slotted pages, the buffer pool, and heap-backed relations.

   The pool properties the engine depends on: a pinned frame is never
   evicted (its bytes survive arbitrary paging traffic), and the miss
   count of a cold scan equals the number of distinct pages read. The
   heap properties: locations are stable, a random append/delete history
   agrees with a list model, and contents survive close/reopen. *)

module V = Rdbms.Value
module D = Rdbms.Datatype
module S = Rdbms.Schema
module R = Rdbms.Relation
module Page = Rdbms.Page
module Pool = Rdbms.Buffer_pool
module Heap = Rdbms.Heap
module E = Rdbms.Engine
module Stats = Rdbms.Stats

let tmpfile name =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  (try Sys.remove path with Sys_error _ -> ());
  path

let tmpdir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Unix.mkdir dir 0o755;
  dir

let row i s = [| V.Int i; V.Str s |]

(* ------------------------------------------------------------------ *)
(* Pages *)

let test_page_roundtrip () =
  let p = Page.create () in
  let r0 = row 1 "alpha" and r1 = row (-7) "" in
  let s0 = Option.get (Page.insert p r0) in
  let s1 = Option.get (Page.insert p r1) in
  Alcotest.(check int) "slots allocate in order" 1 s1;
  Alcotest.(check string) "get 0" (Rdbms.Tuple.to_string r0)
    (Rdbms.Tuple.to_string (Option.get (Page.get p s0)));
  Alcotest.(check string) "get 1" (Rdbms.Tuple.to_string r1)
    (Rdbms.Tuple.to_string (Option.get (Page.get p s1)));
  Alcotest.(check bool) "delete live" true (Page.delete p s0);
  Alcotest.(check bool) "delete dead" false (Page.delete p s0);
  Alcotest.(check bool) "dead slot reads None" true (Page.get p s0 = None);
  Alcotest.(check int) "live count" 1 (Page.live p);
  Alcotest.(check (list string)) "page is consistent" [] (Page.check p)

let test_page_fills_up () =
  let p = Page.create () in
  let rec fill n = if Page.insert p (row n "padpadpad") = None then n else fill (n + 1) in
  let fitted = fill 0 in
  Alcotest.(check bool) "a full page holds many rows" true (fitted > 100);
  Alcotest.(check int) "all live" fitted (Page.live p);
  Alcotest.(check (list string)) "full page is consistent" [] (Page.check p)

(* ------------------------------------------------------------------ *)
(* Buffer pool *)

(* An in-memory "disk" backend recording reads. *)
let mem_backend () =
  let store = Hashtbl.create 16 in
  let reads = ref 0 in
  let read pno buf =
    incr reads;
    match Hashtbl.find_opt store pno with
    | Some (data : Bytes.t) -> Bytes.blit data 0 buf 0 Page.size
    | None -> Bytes.fill buf 0 Page.size '\000'
  in
  let write pno buf = Hashtbl.replace store pno (Bytes.copy buf) in
  ({ Pool.read; write }, store, reads)

let test_pool_pinned_never_evicted () =
  let pool = Pool.create ~pages:2 () in
  let backend, _, _ = mem_backend () in
  let f = Pool.register pool backend in
  let data = Pool.pin_fresh pool f 0 in
  Bytes.set data 100 'Z';
  (* page 0 stays pinned while every other frame churns *)
  for pno = 1 to 40 do
    let d = Pool.pin pool f pno in
    Bytes.set d 0 'x';
    Pool.mark_dirty pool f pno;
    Pool.unpin pool f pno
  done;
  Alcotest.(check char) "pinned frame kept its bytes" 'Z' (Bytes.get data 100);
  (* a second pin of the same page must return the same frame *)
  let again = Pool.pin pool f 0 in
  Alcotest.(check bool) "same frame" true (again == data);
  Pool.unpin pool f 0;
  Pool.unpin pool f 0;
  Alcotest.(check (list string)) "pool consistent" [] (Pool.check pool)

let test_pool_all_pinned_fails () =
  let pool = Pool.create ~pages:2 () in
  let backend, _, _ = mem_backend () in
  let f = Pool.register pool backend in
  ignore (Pool.pin_fresh pool f 0);
  ignore (Pool.pin_fresh pool f 1);
  Alcotest.(check bool) "third pin fails" true
    (try
       ignore (Pool.pin pool f 2);
       false
     with Failure _ -> true);
  Pool.unpin pool f 0;
  Pool.unpin pool f 1

let test_pool_miss_counting () =
  let pool = Pool.create ~pages:4 () in
  let backend, store, backend_reads = mem_backend () in
  let f = Pool.register pool backend in
  for pno = 0 to 9 do
    Hashtbl.replace store pno (Bytes.make Page.size 'p')
  done;
  let scan () =
    for pno = 0 to 9 do
      ignore (Pool.pin pool f pno);
      Pool.unpin pool f pno
    done
  in
  let m0 = Pool.misses pool in
  scan ();
  (* cold scan: one miss per distinct page, and every miss hit the disk *)
  Alcotest.(check int) "cold misses = unique pages" 10 (Pool.misses pool - m0);
  Alcotest.(check int) "misses = backend reads" !backend_reads (Pool.misses pool);
  (* a scan wider than the pool rereads everything; within the pool it's free *)
  let small_pool = Pool.create ~pages:16 () in
  let b2, s2, r2 = mem_backend () in
  let f2 = Pool.register small_pool b2 in
  for pno = 0 to 9 do
    Hashtbl.replace s2 pno (Bytes.make Page.size 'q')
  done;
  let scan2 () =
    for pno = 0 to 9 do
      ignore (Pool.pin small_pool f2 pno);
      Pool.unpin small_pool f2 pno
    done
  in
  scan2 ();
  let after_cold = !r2 in
  scan2 ();
  Alcotest.(check int) "warm scan in a big-enough pool is free" after_cold !r2;
  Alcotest.(check int) "10 hits recorded" 10 (Pool.hits small_pool)

let test_pool_writeback_on_eviction () =
  let pool = Pool.create ~pages:2 () in
  let backend, store, _ = mem_backend () in
  let f = Pool.register pool backend in
  let d0 = Pool.pin_fresh pool f 0 in
  Bytes.set d0 7 'A';
  Pool.mark_dirty pool f 0;
  Pool.unpin pool f 0;
  (* push page 0 out *)
  for pno = 1 to 4 do
    ignore (Pool.pin pool f pno);
    Pool.unpin pool f pno
  done;
  Alcotest.(check char) "evicted dirty page reached disk" 'A'
    (Bytes.get (Hashtbl.find store 0) 7);
  Alcotest.(check bool) "writeback counted" true (Pool.writebacks pool >= 1)

(* ------------------------------------------------------------------ *)
(* Heaps *)

let test_heap_roundtrip_and_reopen () =
  let path = tmpfile "dkb_test_heap.heap" in
  let pool = Pool.create ~pages:4 () in
  let h = Heap.create ~pool path in
  let rows = List.init 500 (fun i -> row i (Printf.sprintf "row%d" i)) in
  let locs = List.map (Heap.append h) rows in
  Alcotest.(check bool) "several pages" true (Heap.page_count h > 1);
  Alcotest.(check int) "live" 500 (Heap.live h);
  List.iter
    (fun i ->
      Alcotest.(check string)
        (Printf.sprintf "get %d" i)
        (Rdbms.Tuple.to_string (List.nth rows i))
        (Rdbms.Tuple.to_string (Option.get (Heap.get h (List.nth locs i)))))
    [ 0; 499 ];
  Alcotest.(check bool) "delete" true (Heap.delete h (List.hd locs));
  Alcotest.(check int) "live after delete" 499 (Heap.live h);
  Alcotest.(check (list string)) "heap consistent" [] (Heap.check h);
  Heap.close h;
  (* reopen: everything that was written must still be there *)
  let pool2 = Pool.create ~pages:4 () in
  let h2 = Heap.create ~pool:pool2 path in
  Alcotest.(check int) "reopened live" 499 (Heap.live h2);
  let got = ref [] in
  Heap.iter (fun _ r -> got := Rdbms.Tuple.to_string r :: !got) h2;
  Alcotest.(check int) "iter count" 499 (List.length !got);
  Heap.close h2;
  Sys.remove path

let test_heap_iter_under_one_frame_pool () =
  (* the scan protocol holds one pin at a time, so even a 1-frame pool
     supports scans over a multi-page heap *)
  let path = tmpfile "dkb_test_heap1.heap" in
  let pool = Pool.create ~pages:1 () in
  let h = Heap.create ~pool path in
  List.iter (fun i -> ignore (Heap.append h (row i "xyzw"))) (List.init 400 Fun.id);
  let n = ref 0 in
  Heap.iter (fun _ _ -> incr n) h;
  Alcotest.(check int) "all rows scanned" 400 !n;
  Heap.close h;
  Sys.remove path

let test_heap_clear_releases_frames () =
  let path = tmpfile "dkb_test_heap2.heap" in
  let pool = Pool.create ~pages:8 () in
  let h = Heap.create ~pool path in
  List.iter (fun i -> ignore (Heap.append h (row i "abcdefgh"))) (List.init 300 Fun.id);
  Alcotest.(check bool) "resident frames" true (Heap.resident h > 0);
  Heap.clear h;
  Alcotest.(check int) "no frames after clear" 0 (Heap.resident h);
  Alcotest.(check int) "no pages after clear" 0 (Heap.page_count h);
  Alcotest.(check int) "file truncated" 0 (Unix.stat path).Unix.st_size;
  Alcotest.(check (list string)) "pool consistent" [] (Pool.check pool);
  Heap.close h;
  Sys.remove path

(* Random append/delete history against a list model. *)
let heap_model_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"heap agrees with a list model on random histories"
       QCheck2.Gen.(list_size (int_range 0 120) (pair bool small_nat))
       (fun ops ->
         let path = tmpfile "dkb_test_heap_qc.heap" in
         let pool = Pool.create ~pages:3 () in
         let h = Heap.create ~pool path in
         let model = Hashtbl.create 64 in
         let next = ref 0 in
         List.iter
           (fun (isdel, k) ->
             if isdel && Hashtbl.length model > 0 then begin
               let keys = Hashtbl.fold (fun l _ acc -> l :: acc) model [] in
               let l = List.nth keys (k mod List.length keys) in
               Hashtbl.remove model l;
               ignore (Heap.delete h l)
             end
             else begin
               let r = row !next (string_of_int (k * 7)) in
               incr next;
               let l = Heap.append h r in
               Hashtbl.replace model l r
             end)
           ops;
         let live_model =
           Hashtbl.fold (fun _ r acc -> Rdbms.Tuple.to_string r :: acc) model []
           |> List.sort compare
         in
         let live_heap = ref [] in
         Heap.iter (fun _ r -> live_heap := Rdbms.Tuple.to_string r :: !live_heap) h;
         let live_heap = List.sort compare !live_heap in
         let consistent = Heap.check h = [] && Pool.check pool = [] in
         Heap.close h;
         Sys.remove path;
         live_model = live_heap && consistent))

(* ------------------------------------------------------------------ *)
(* Heap-backed relations *)

let test_relation_attach_detach () =
  let path = tmpfile "dkb_test_rel.heap" in
  let pool = Pool.create ~pages:4 () in
  let schema = S.make [ ("a", D.TInt); ("b", D.TStr) ] in
  let r = R.create schema in
  List.iter (fun i -> ignore (R.insert r (row i "v"))) (List.init 200 Fun.id);
  let h = Heap.create ~pool path in
  R.attach r h `Overwrite;
  Alcotest.(check bool) "backed" true (R.backed r);
  Alcotest.(check int) "pages = heap pages" (Heap.page_count h) (R.pages r);
  Alcotest.(check int) "to_list reads through the heap" 200 (List.length (R.to_list r));
  ignore (R.insert r (row 999 "new"));
  ignore (R.delete r (row 0 "v"));
  Alcotest.(check int) "heap live tracks" 200 (Heap.live h);
  Alcotest.(check (list string)) "relation audit clean" [] (R.check r);
  R.detach r;
  Alcotest.(check bool) "detached keeps rows in memory" true (R.cardinal r = 200);
  Heap.close h;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Engine-level: measured page_reads, TRUNCATE/DROP frame accounting *)

let storage_engine dir =
  let e = E.create () in
  E.attach_storage e ~dir ();
  ignore (E.exec e "CREATE TABLE t (a integer, b char)");
  ignore
    (E.exec e
       (Printf.sprintf "INSERT INTO t VALUES %s"
          (String.concat ", " (List.init 600 (fun i -> Printf.sprintf "(%d, 'r%d')" i i)))));
  e

let test_engine_measured_reads () =
  let dir = tmpdir "dkb_test_store_eng" in
  let e = storage_engine dir in
  let heap = List.assoc "t" (E.storage_heaps e) in
  let pages = Heap.page_count heap in
  Alcotest.(check bool) "multi-page table" true (pages > 1);
  E.drop_page_cache e;
  let stats = E.stats e in
  let before = Stats.copy stats in
  Alcotest.(check int) "scan sees every row" 600 (E.scalar_int e "SELECT COUNT(*) FROM t");
  let cold = (Stats.diff stats before).Stats.page_reads in
  Alcotest.(check int) "cold scan reads exactly the heap pages" pages cold;
  let before2 = Stats.copy stats in
  ignore (E.scalar_int e "SELECT COUNT(*) FROM t");
  let warm = (Stats.diff stats before2).Stats.page_reads in
  Alcotest.(check int) "warm scan reads nothing (fits in the pool)" 0 warm;
  Alcotest.(check (list string)) "invariants clean"
    [] (List.map Rdbms.Invariants.violation_to_string (E.check_invariants e));
  E.close_storage e

let test_engine_truncate_drop_no_leak () =
  let dir = tmpdir "dkb_test_store_trunc" in
  let e = storage_engine dir in
  ignore (E.exec e "TRUNCATE TABLE t");
  let heap = List.assoc "t" (E.storage_heaps e) in
  Alcotest.(check int) "truncate freed the heap" 0 (Heap.page_count heap);
  Alcotest.(check int) "truncate freed the frames" 0 (Heap.resident heap);
  Alcotest.(check int) "truncated relation charges zero pages"
    0 (R.pages (Option.get (Rdbms.Catalog.find_table (E.catalog e) "t")).Rdbms.Catalog.tbl_relation);
  ignore (E.exec e "INSERT INTO t VALUES (1, 'x')");
  ignore (E.exec e "DROP TABLE t");
  Alcotest.(check bool) "drop removed the heap file" false
    (Sys.file_exists (Filename.concat dir "t.heap"));
  Alcotest.(check (list string)) "invariants clean after truncate+drop"
    [] (List.map Rdbms.Invariants.violation_to_string (E.check_invariants e));
  E.close_storage e

let test_engine_reopen_directory () =
  let dir = tmpdir "dkb_test_store_reopen" in
  let e = storage_engine dir in
  let dump = Rdbms.Persist.dump e in
  E.close_storage e;
  (* a fresh engine with the same schema, attaching the same directory:
     the empty relation loads from the heap file *)
  let e2 = E.create () in
  ignore (E.exec e2 "CREATE TABLE t (a integer, b char)");
  (* CREATE TABLE with storage attached would truncate; attach after *)
  E.attach_storage e2 ~dir ();
  Alcotest.(check int) "rows loaded from the heap" 600
    (E.scalar_int e2 "SELECT COUNT(*) FROM t");
  Alcotest.(check string) "dump equal after reload" dump (Rdbms.Persist.dump e2);
  E.close_storage e2

let () =
  Alcotest.run "storage"
    [
      ( "page",
        [
          Alcotest.test_case "roundtrip" `Quick test_page_roundtrip;
          Alcotest.test_case "fills up" `Quick test_page_fills_up;
        ] );
      ( "buffer pool",
        [
          Alcotest.test_case "pinned never evicted" `Quick test_pool_pinned_never_evicted;
          Alcotest.test_case "all pinned fails" `Quick test_pool_all_pinned_fails;
          Alcotest.test_case "miss counting" `Quick test_pool_miss_counting;
          Alcotest.test_case "writeback on eviction" `Quick test_pool_writeback_on_eviction;
        ] );
      ( "heap",
        [
          Alcotest.test_case "roundtrip and reopen" `Quick test_heap_roundtrip_and_reopen;
          Alcotest.test_case "iter under 1-frame pool" `Quick test_heap_iter_under_one_frame_pool;
          Alcotest.test_case "clear releases frames" `Quick test_heap_clear_releases_frames;
          heap_model_agreement;
        ] );
      ( "backed relation",
        [ Alcotest.test_case "attach/detach" `Quick test_relation_attach_detach ] );
      ( "engine",
        [
          Alcotest.test_case "measured reads" `Quick test_engine_measured_reads;
          Alcotest.test_case "truncate/drop frame accounting" `Quick
            test_engine_truncate_drop_no_leak;
          Alcotest.test_case "reopen directory" `Quick test_engine_reopen_directory;
        ] );
    ]
