(* Tests for the Stored D/KB manager: dictionaries, rule storage and the
   §4.1 relevant-rule extraction. *)

module SD = Core.Stored_dkb
module P = Datalog.Parser
module D = Rdbms.Datatype

let fresh () = SD.init (Rdbms.Engine.create ())

let rule s = P.parse_clause s

let clause_str c = Datalog.Ast.clause_to_string c

let test_init_idempotent () =
  let e = Rdbms.Engine.create () in
  let t = SD.init e in
  ignore (SD.store_rule t (rule "a(X) :- b(X)."));
  (* re-init over the same engine resumes, does not wipe *)
  let t2 = SD.init e in
  Alcotest.(check int) "rules survive" 1 (SD.rule_count t2);
  let id = SD.store_rule t2 (rule "c(X) :- b(X).") in
  Alcotest.(check bool) "ruleid counter resumed" true (id >= 2)

let test_edb_dictionary () =
  let t = fresh () in
  SD.register_base t "par" [ ("p", D.TStr); ("c", D.TStr) ];
  SD.register_base t "age" [ ("who", D.TStr); ("n", D.TInt) ];
  Alcotest.(check (list string)) "base preds" [ "age"; "par" ] (SD.base_predicates t);
  (match SD.base_schema t "age" with
  | Some [ ("who", D.TStr); ("n", D.TInt) ] -> ()
  | _ -> Alcotest.fail "wrong schema");
  Alcotest.(check bool) "missing" true (SD.base_schema t "nope" = None);
  (* re-registration replaces *)
  SD.register_base t "age" [ ("who", D.TStr) ];
  match SD.base_schema t "age" with
  | Some [ ("who", D.TStr) ] -> ()
  | _ -> Alcotest.fail "replace failed"

let test_idb_dictionary () =
  let t = fresh () in
  SD.put_derived_types t "anc" [ D.TStr; D.TStr ];
  (match SD.derived_types t "anc" with
  | Some [ D.TStr; D.TStr ] -> ()
  | _ -> Alcotest.fail "wrong types");
  SD.put_derived_types t "anc" [ D.TInt ];
  (match SD.derived_types t "anc" with
  | Some [ D.TInt ] -> ()
  | _ -> Alcotest.fail "upsert failed");
  Alcotest.(check bool) "missing" true (SD.derived_types t "nope" = None)

let test_read_dictionaries () =
  let t = fresh () in
  SD.register_base t "par" [ ("p", D.TStr); ("c", D.TStr) ];
  SD.put_derived_types t "anc" [ D.TStr; D.TStr ];
  let bases, deriveds = SD.read_dictionaries t ~base:[ "par"; "ghost" ] ~derived:[ "anc"; "ghost" ] in
  Alcotest.(check int) "one base" 1 (List.length bases);
  Alcotest.(check int) "one derived" 1 (List.length deriveds)

let test_store_rule_dedup () =
  let t = fresh () in
  let id1 = SD.store_rule t (rule "a(X) :- b(X).") in
  let id2 = SD.store_rule t (rule "a(X) :- b(X).") in
  let id3 = SD.store_rule t (rule "a(X) :- c(X).") in
  Alcotest.(check int) "same text same id" id1 id2;
  Alcotest.(check bool) "different rule new id" true (id3 <> id1);
  Alcotest.(check int) "count" 2 (SD.rule_count t)

let test_stored_rules_roundtrip () =
  let t = fresh () in
  let texts =
    [ "a(X, Y) :- b(X, Z), c(Z, Y)."; "a(X, Y) :- d(X, Y)."; "top(X) :- a(X, john)." ]
  in
  List.iter (fun s -> ignore (SD.store_rule t (rule s))) texts;
  Alcotest.(check (list string)) "parse back in id order" texts
    (List.map clause_str (SD.stored_rules t))

let test_reachable_storage () =
  let t = fresh () in
  SD.replace_reachable t "a" [ "b"; "c" ];
  Alcotest.(check (list string)) "read back" [ "b"; "c" ] (SD.reachable_of t "a");
  SD.replace_reachable t "a" [ "d" ];
  Alcotest.(check (list string)) "replaced" [ "d" ] (SD.reachable_of t "a");
  Alcotest.(check int) "pair count" 1 (SD.reachable_pair_count t);
  Alcotest.(check (list string)) "dependents" [ "a" ] (SD.dependents_of t "d")

let test_extraction () =
  let t = fresh () in
  (* two independent clusters plus a shared base *)
  List.iter
    (fun s -> ignore (SD.store_rule t (rule s)))
    [
      "top1(X) :- mid1(X).";
      "mid1(X) :- base(X).";
      "top2(X) :- mid2(X).";
      "mid2(X) :- base(X).";
    ];
  SD.replace_reachable t "top1" [ "mid1"; "base" ];
  SD.replace_reachable t "mid1" [ "base" ];
  SD.replace_reachable t "top2" [ "mid2"; "base" ];
  SD.replace_reachable t "mid2" [ "base" ];
  let got = SD.extract_rules_for t [ "top1" ] in
  Alcotest.(check (list string)) "only cluster 1"
    [ "top1(X) :- mid1(X)."; "mid1(X) :- base(X)." ]
    (List.map clause_str got);
  let both = SD.extract_rules_for t [ "top1"; "top2" ] in
  Alcotest.(check int) "both clusters, deduped" 4 (List.length both);
  Alcotest.(check (list string)) "unknown pred extracts nothing" []
    (List.map clause_str (SD.extract_rules_for t [ "ghost" ]));
  Alcotest.(check (list string)) "heads-only variant"
    [ "top1(X) :- mid1(X)." ]
    (List.map clause_str (SD.rules_with_head t [ "top1" ]))

let test_corrupt_rulesource () =
  (* a rulesource row whose text no longer parses (hand-edited D/KB,
     torn write, ...) must surface as the typed Corrupt exception, and
     come back as Error from the session boundary — never as Failure *)
  let s = Core.Session.create () in
  let engine = Core.Session.engine s in
  let t = Core.Session.stored s in
  ignore (SD.store_rule t (rule "good(X) :- base(X)."));
  ignore
    (Rdbms.Engine.exec engine
       "INSERT INTO rulesource VALUES (99, 'bad', 'this is :::: not datalog')");
  (match SD.stored_rules t with
  | exception SD.Corrupt msg ->
      Alcotest.(check bool) "message shows the bad text" true
        (Astring.String.is_infix ~affix:"not datalog" msg)
  | exception Failure _ -> Alcotest.fail "expected Corrupt, got Failure"
  | _ -> Alcotest.fail "expected Corrupt");
  (match SD.extract_rules_for t [ "bad" ] with
  | exception SD.Corrupt _ -> ()
  | _ -> Alcotest.fail "extraction must also detect the corrupt row");
  (* the session maps it to Error instead of letting it escape *)
  match Core.Session.query s "bad(X)" with
  | Error msg ->
      Alcotest.(check bool) "session labels the corruption" true
        (Astring.String.is_infix ~affix:"corrupt stored D/KB" msg)
  | Ok _ -> Alcotest.fail "querying a corrupt predicate cannot succeed"

let test_corrupt_dictionary () =
  let s = Core.Session.create () in
  let engine = Core.Session.engine s in
  let t = Core.Session.stored s in
  SD.register_base t "rel" [ ("a", D.TInt) ] ;
  ignore
    (Rdbms.Engine.exec engine
       "INSERT INTO idb_tables VALUES ('mystery', 1)");
  ignore
    (Rdbms.Engine.exec engine
       "INSERT INTO idb_columns VALUES ('mystery', 1, 'blob')");
  match SD.derived_types t "mystery" with
  | exception SD.Corrupt msg ->
      Alcotest.(check bool) "names the bad type" true
        (Astring.String.is_infix ~affix:"blob" msg)
  | _ -> Alcotest.fail "unknown column type must raise Corrupt"

let test_has_rules_for () =
  let t = fresh () in
  ignore (SD.store_rule t (rule "a(X) :- b(X)."));
  Alcotest.(check bool) "yes" true (SD.has_rules_for t "a");
  Alcotest.(check bool) "no" false (SD.has_rules_for t "b")

let () =
  Alcotest.run "stored_dkb"
    [
      ( "storage",
        [
          Alcotest.test_case "init idempotent" `Quick test_init_idempotent;
          Alcotest.test_case "edb dictionary" `Quick test_edb_dictionary;
          Alcotest.test_case "idb dictionary" `Quick test_idb_dictionary;
          Alcotest.test_case "read dictionaries" `Quick test_read_dictionaries;
          Alcotest.test_case "rule dedup" `Quick test_store_rule_dedup;
          Alcotest.test_case "rules roundtrip" `Quick test_stored_rules_roundtrip;
          Alcotest.test_case "reachable pairs" `Quick test_reachable_storage;
          Alcotest.test_case "extraction" `Quick test_extraction;
          Alcotest.test_case "has_rules_for" `Quick test_has_rules_for;
          Alcotest.test_case "corrupt rulesource row" `Quick test_corrupt_rulesource;
          Alcotest.test_case "corrupt dictionary row" `Quick test_corrupt_dictionary;
        ] );
    ]
