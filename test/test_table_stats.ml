(* ANALYZE statistics collection, the cardinality-bucketed plan-cache key
   (LFP delta feedback), and the costed planner's never-worse property on
   the workload graph shapes. *)

module E = Rdbms.Engine
module Stats = Rdbms.Stats
module TS = Rdbms.Table_stats
module Graphgen = Workload.Graphgen

let exec e sql = ignore (E.exec e sql : E.result)

let fresh_pets () =
  let e = E.create () in
  exec e "CREATE TABLE pets (id integer, species char, age integer)";
  exec e
    "INSERT INTO pets VALUES (1, 'cat', 3), (2, 'cat', 5), (3, 'dog', 3), (4, 'owl', 90), (5, \
     'cat', 1)";
  e

let stats_of e name =
  let tbl = Rdbms.Catalog.find_table_exn (E.catalog e) name in
  match tbl.Rdbms.Catalog.tbl_stats with
  | Some st -> st
  | None -> Alcotest.fail (name ^ " has no statistics")

let test_analyze_collects () =
  let e = fresh_pets () in
  exec e "ANALYZE pets";
  let st = stats_of e "pets" in
  Alcotest.(check int) "rows" 5 st.TS.s_rows;
  let col name =
    match TS.find_col st name with
    | Some c -> c
    | None -> Alcotest.fail ("no column " ^ name)
  in
  Alcotest.(check int) "id ndv" 5 (col "id").TS.c_ndv;
  Alcotest.(check int) "species ndv" 3 (col "species").TS.c_ndv;
  Alcotest.(check int) "age ndv" 4 (col "age").TS.c_ndv;
  Alcotest.(check bool) "age min" true ((col "age").TS.c_min = Some (Rdbms.Value.Int 1));
  Alcotest.(check bool) "age max" true ((col "age").TS.c_max = Some (Rdbms.Value.Int 90));
  Alcotest.(check bool) "species min" true
    ((col "species").TS.c_min = Some (Rdbms.Value.Str "cat"));
  (* case-insensitive lookup *)
  Alcotest.(check bool) "find_col case-insensitive" true (TS.find_col st "AGE" <> None)

let test_analyze_counters_and_version () =
  let e = fresh_pets () in
  exec e "CREATE TABLE toys (id integer)";
  let before = Stats.copy (E.stats e) in
  let v0 = Rdbms.Catalog.version (E.catalog e) in
  exec e "ANALYZE";
  let d = Stats.diff (E.stats e) before in
  Alcotest.(check int) "both tables analyzed" 2 d.Stats.tables_analyzed;
  Alcotest.(check bool) "reads the analyzed pages" true (d.Stats.page_reads > 0);
  Alcotest.(check bool) "ANALYZE bumps the catalog version" true
    (Rdbms.Catalog.version (E.catalog e) > v0);
  (* unknown table is a typed error *)
  Alcotest.(check bool) "unknown table" true
    (try
       exec e "ANALYZE nosuch";
       false
     with E.Sql_error _ -> true)

let test_analyze_roundtrips_through_printer () =
  let open Rdbms in
  let check sql =
    Alcotest.(check string) sql sql (Sql_printer.stmt (Sql_parser.parse sql))
  in
  check "ANALYZE";
  check "ANALYZE pets"

(* Under costed planning the cached plan is keyed on log2 cardinality
   buckets: growing a referenced table across a bucket boundary replans
   (counted in card_replans); same-bucket churn keeps the cached plan. *)
let test_card_bucket_replans () =
  let e = fresh_pets () in
  exec e "CREATE TABLE visits (pet integer, cost integer)";
  exec e "INSERT INTO visits VALUES (1, 10), (2, 20), (3, 30), (4, 40)";
  E.set_join_order e Rdbms.Planner.Costed;
  let p = E.prepare e "SELECT p.species FROM pets p, visits v WHERE p.id = v.pet" in
  let run () = ignore (E.exec_prepared e p : E.result) in
  run ();
  (* same bucket: 4 -> 5 rows stays in bucket 2 *)
  let before = Stats.copy (E.stats e) in
  exec e "INSERT INTO visits VALUES (5, 50)";
  run ();
  let d = Stats.diff (E.stats e) before in
  Alcotest.(check int) "same-bucket rerun hits the plan cache" 1 d.Stats.plan_cache_hits;
  Alcotest.(check int) "no replan within a bucket" 0 d.Stats.card_replans;
  (* crossing buckets: 5 -> 40 rows jumps from bucket 2 to bucket 5 *)
  let before = Stats.copy (E.stats e) in
  for i = 6 to 40 do
    exec e (Printf.sprintf "INSERT INTO visits VALUES (%d, %d)" i (10 * i))
  done;
  run ();
  let d = Stats.diff (E.stats e) before in
  Alcotest.(check int) "bucket crossing replans" 1 d.Stats.card_replans;
  (* syntactic planning ignores cardinalities: no bucket key, no replans *)
  E.set_join_order e Rdbms.Planner.Syntactic;
  run ();
  let before = Stats.copy (E.stats e) in
  for i = 41 to 200 do
    exec e (Printf.sprintf "INSERT INTO visits VALUES (%d, %d)" i (10 * i))
  done;
  run ();
  let d = Stats.diff (E.stats e) before in
  Alcotest.(check int) "syntactic never card-replans" 0 d.Stats.card_replans;
  Alcotest.(check int) "syntactic rerun hits the plan cache" 1 d.Stats.plan_cache_hits

(* The headline property: on every workload graph shape, the costed
   planner's measured simulated I/O for a join never exceeds the
   syntactic planner's, and the answers agree. *)
let test_costed_never_worse_on_graphs () =
  let shapes =
    let rng = Dkb_util.Rng.create 5 in
    [
      ("lists", (Graphgen.lists ~rng ~count:12 ~avg_length:8).Graphgen.l_edges);
      ("tree", (Graphgen.full_binary_tree ~depth:6 ()).Graphgen.t_edges);
      ("dag", (Graphgen.dag ~rng ~path_length:6 ~width:8 ~fan_out:2 ()).Graphgen.d_edges);
    ]
  in
  let sql =
    "SELECT p1.par, p3.child FROM parent p1, parent p2, parent p3 WHERE p1.child = p2.par AND \
     p2.child = p3.par"
  in
  List.iter
    (fun (shape, edges) ->
      let run mode =
        let s = Core.Session.create () in
        (match Workload.Queries.setup_parent s edges with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg);
        let e = Core.Session.engine s in
        E.set_join_order e mode;
        if mode = Rdbms.Planner.Costed then exec e "ANALYZE";
        let before = Stats.copy (E.stats e) in
        let rows =
          match E.exec e sql with
          | E.Rows { rows; _ } -> List.length rows
          | _ -> Alcotest.fail "rows"
        in
        (rows, Stats.total_io (Stats.diff (E.stats e) before))
      in
      let rows_syn, io_syn = run Rdbms.Planner.Syntactic in
      let rows_cost, io_cost = run Rdbms.Planner.Costed in
      Alcotest.(check int) (shape ^ ": same answers") rows_syn rows_cost;
      Alcotest.(check bool)
        (Printf.sprintf "%s: costed io %d <= syntactic io %d" shape io_cost io_syn)
        true (io_cost <= io_syn))
    shapes

let () =
  Alcotest.run "table_stats"
    [
      ( "analyze",
        [
          Alcotest.test_case "collects per-column stats" `Quick test_analyze_collects;
          Alcotest.test_case "counters and version bump" `Quick test_analyze_counters_and_version;
          Alcotest.test_case "parser/printer roundtrip" `Quick
            test_analyze_roundtrips_through_printer;
        ] );
      ( "delta feedback",
        [
          Alcotest.test_case "card-bucket replans" `Quick test_card_bucket_replans;
        ] );
      ( "cost property",
        [
          Alcotest.test_case "costed never worse on graphs" `Quick
            test_costed_never_worse_on_graphs;
        ] );
    ]
