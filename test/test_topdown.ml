(* Tests for the top-down (QSQ) baseline evaluator, including equivalence
   with the bottom-up SQL runtime on random graphs. *)

module A = Datalog.Ast
module P = Datalog.Parser
module TD = Datalog.Topdown
module V = Rdbms.Value

let tc_rules =
  List.map P.parse_clause [ "tc(X, Y) :- edge(X, Y)."; "tc(X, Y) :- edge(X, Z), tc(Z, Y)." ]

let facts_of edges = function
  | "edge" -> List.map (fun (a, b) -> [ V.Int a; V.Int b ]) edges
  | _ -> []

let is_base p = p = "edge"

let solve edges goal =
  (match TD.solve ~facts:(facts_of edges) ~is_base ~rules:tc_rules ~goal with
  | Ok rows -> rows
  | Error e -> Alcotest.fail (TD.error_to_string e))
  |> List.map (fun r ->
         match r with
         | [| V.Int a; V.Int b |] -> (a, b)
         | _ -> Alcotest.fail "bad row")
  |> List.sort compare

let test_chain () =
  Alcotest.(check (list (pair int int)))
    "bound-first query"
    [ (1, 2); (1, 3) ]
    (solve [ (1, 2); (2, 3) ] (A.atom "tc" [ A.Const (V.Int 1); A.Var "W" ]))

let test_cycle_terminates () =
  Alcotest.(check (list (pair int int)))
    "cyclic data"
    [ (1, 1); (1, 2); (1, 3) ]
    (solve [ (1, 2); (2, 3); (3, 1) ] (A.atom "tc" [ A.Const (V.Int 1); A.Var "W" ]))

let test_free_query () =
  Alcotest.(check (list (pair int int)))
    "all-free goal"
    [ (1, 2); (1, 3); (2, 3) ]
    (solve [ (1, 2); (2, 3) ] (A.atom "tc" [ A.Var "X"; A.Var "Y" ]))

let test_repeated_var_goal () =
  (* tc(X, X): nodes on cycles *)
  Alcotest.(check (list (pair int int)))
    "diagonal goal"
    [ (2, 2); (3, 3) ]
    (solve [ (1, 2); (2, 3); (3, 2) ] (A.atom "tc" [ A.Var "X"; A.Var "X" ]))

let test_ground_goal () =
  Alcotest.(check (list (pair int int)))
    "ground goal provable"
    [ (1, 3) ]
    (solve [ (1, 2); (2, 3) ] (A.atom "tc" [ A.Const (V.Int 1); A.Const (V.Int 3) ]));
  Alcotest.(check (list (pair int int)))
    "ground goal unprovable" []
    (solve [ (1, 2) ] (A.atom "tc" [ A.Const (V.Int 2); A.Const (V.Int 1) ]))

let test_subgoal_relevance () =
  (* a bound query on a long chain should not table subgoals for
     unreachable parts of the graph *)
  let edges = [ (1, 2); (2, 3); (10, 11); (11, 12); (12, 13) ] in
  let subgoals goal =
    match TD.solve_counted ~facts:(facts_of edges) ~is_base ~rules:tc_rules ~goal with
    | Ok (_, n) -> n
    | Error e -> Alcotest.fail (TD.error_to_string e)
  in
  let bound = subgoals (A.atom "tc" [ A.Const (V.Int 1); A.Var "W" ]) in
  let free = subgoals (A.atom "tc" [ A.Var "X"; A.Var "Y" ]) in
  Alcotest.(check bool)
    (Printf.sprintf "bound query avoids the unreachable chain (%d < %d)" bound free)
    true
    (bound <= 4 && bound < free)

let test_program_facts () =
  let rules =
    List.map P.parse_clause [ "vip(boss)."; "vip(X) :- reports(X, Y), vip(Y)." ]
  in
  let facts = function
    | "reports" -> [ [ V.Str "alice"; V.Str "boss" ] ]
    | _ -> []
  in
  let got =
    (match
       TD.solve ~facts ~is_base:(fun p -> p = "reports") ~rules
         ~goal:(A.atom "vip" [ A.Var "X" ])
     with
    | Ok rows -> rows
    | Error e -> Alcotest.fail (TD.error_to_string e))
    |> List.map (fun r -> V.to_string r.(0))
    |> List.sort compare
  in
  Alcotest.(check (list string)) "facts + rules" [ "alice"; "boss" ] got

let test_negation_rejected () =
  let rules = List.map P.parse_clause [ "p(X) :- edge(X, Y), not tcx(Y)." ] in
  match
    TD.solve ~facts:(facts_of [ (1, 2) ]) ~is_base ~rules ~goal:(A.atom "p" [ A.Var "X" ])
  with
  | Error (TD.Unsupported _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ TD.error_to_string e)
  | Ok _ -> Alcotest.fail "negation was not rejected"

let test_missing_pred_rejected () =
  match
    TD.solve ~facts:(facts_of []) ~is_base ~rules:tc_rules ~goal:(A.atom "ghost" [ A.Var "X" ])
  with
  | Error (TD.Undefined "ghost") -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ TD.error_to_string e)
  | Ok _ -> Alcotest.fail "undefined predicate was not rejected"

let test_unsafe_rejected () =
  (* head variable never bound by the body *)
  let rules = List.map P.parse_clause [ "p(X, Y) :- edge(X, Z)." ] in
  match
    TD.solve ~facts:(facts_of [ (1, 2) ]) ~is_base ~rules ~goal:(A.atom "p" [ A.Var "X"; A.Var "Y" ])
  with
  | Error (TD.Unsafe _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ TD.error_to_string e)
  | Ok _ -> Alcotest.fail "unsafe rule was not rejected"

(* equivalence with the bottom-up runtime *)
let prop_matches_bottom_up =
  let gen =
    QCheck2.Gen.(
      pair (list_size (int_range 0 25) (pair (int_bound 8) (int_bound 8))) (int_bound 8))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"top-down = bottom-up on random graphs" gen
       (fun (edges, c) ->
         let top =
           solve edges (A.atom "tc" [ A.Const (V.Int c); A.Var "W" ]) |> List.map snd
         in
         let s = Core.Session.create () in
         (match Workload.Queries.setup_edge s edges with
         | Ok () -> ()
         | Error e -> failwith e);
         (match Core.Session.load_rules s Workload.Queries.tc_rules with
         | Ok () -> ()
         | Error e -> failwith e);
         let bottom =
           match Core.Session.query_goal s (Workload.Queries.tc_goal_from c) with
           | Ok a ->
               List.map
                 (fun r -> match r.(0) with V.Int x -> x | _ -> -1)
                 a.Core.Session.run.Core.Runtime.rows
               |> List.sort compare
           | Error e -> failwith e
         in
         top = bottom))

let () =
  Alcotest.run "topdown"
    [
      ( "qsq",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "cycles terminate" `Quick test_cycle_terminates;
          Alcotest.test_case "free query" `Quick test_free_query;
          Alcotest.test_case "repeated var goal" `Quick test_repeated_var_goal;
          Alcotest.test_case "ground goal" `Quick test_ground_goal;
          Alcotest.test_case "subgoal relevance" `Quick test_subgoal_relevance;
          Alcotest.test_case "program facts" `Quick test_program_facts;
          Alcotest.test_case "negation rejected" `Quick test_negation_rejected;
          Alcotest.test_case "missing predicate" `Quick test_missing_pred_rejected;
          Alcotest.test_case "unsafe rule rejected" `Quick test_unsafe_rejected;
        ] );
      ("equivalence", [ prop_matches_bottom_up ]);
    ]
