(* Tests for the Semantic Checker: safety, rule coverage and type
   inference (paper §3.2.4). *)

module A = Datalog.Ast
module P = Datalog.Parser
module T = Datalog.Typecheck
module D = Rdbms.Datatype

let rules texts = List.map P.parse_clause texts

let base_env = function
  | "par" -> Some [ D.TStr; D.TStr ]
  | "age" -> Some [ D.TStr; D.TInt ]
  | "num" -> Some [ D.TInt ]
  | _ -> None

let infer_ok texts =
  match T.infer ~base:base_env ~rules:(rules texts) with
  | Ok types -> types
  | Error e -> Alcotest.fail e

let infer_err texts =
  match T.infer ~base:base_env ~rules:(rules texts) with
  | Ok _ -> Alcotest.fail "expected inference error"
  | Error e -> e

let ty = Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (D.to_string t)) D.equal

(* ---------------- safety ---------------- *)

let safe s = T.check_safety (P.parse_clause s)

let test_safety () =
  Alcotest.(check bool) "plain rule" true (safe "p(X) :- q(X)." = Ok ());
  Alcotest.(check bool) "ground fact" true (safe "p(a, 1)." = Ok ());
  Alcotest.(check bool) "non-ground fact" true (Result.is_error (safe "p(X)."));
  Alcotest.(check bool) "unbound head var" true (Result.is_error (safe "p(X, Y) :- q(X)."));
  Alcotest.(check bool) "neg binds nothing" true
    (Result.is_error (safe "p(X) :- not q(X, Y), r(X)."));
  Alcotest.(check bool) "neg vars bound positively" true
    (safe "p(X) :- r(X, Y), not q(X, Y)." = Ok ());
  Alcotest.(check bool) "head constant ok" true (safe "p(a, X) :- q(X)." = Ok ())

(* ---------------- rule coverage ---------------- *)

let test_check_defined () =
  let rs = rules [ "anc(X, Y) :- par(X, Y)."; "top(X) :- anc(X, Y), missing(Y)." ] in
  let is_base p = p = "par" in
  Alcotest.(check bool) "missing pred detected" true
    (Result.is_error (T.check_defined ~rules:rs ~is_base ~goals:[ "top" ]));
  Alcotest.(check bool) "irrelevant missing pred ignored" true
    (T.check_defined ~rules:rs ~is_base ~goals:[ "anc" ] = Ok ())

(* ---------------- inference ---------------- *)

let test_infer_basic () =
  let types = infer_ok [ "anc(X, Y) :- par(X, Y)."; "anc(X, Y) :- par(X, Z), anc(Z, Y)." ] in
  Alcotest.(check (list ty)) "anc types" [ D.TStr; D.TStr ] (List.assoc "anc" types)

let test_infer_mixed_columns () =
  let types = infer_ok [ "older(X, N) :- age(X, N)." ] in
  Alcotest.(check (list ty)) "older" [ D.TStr; D.TInt ] (List.assoc "older" types)

let test_infer_constants () =
  let types = infer_ok [ "tagged(X, 1) :- par(X, Y)." ] in
  Alcotest.(check (list ty)) "const head col" [ D.TStr; D.TInt ] (List.assoc "tagged" types)

let test_infer_through_chain () =
  let types =
    infer_ok [ "a(X) :- b(X)."; "b(X) :- c(X)."; "c(N) :- num(N)." ]
  in
  Alcotest.(check (list ty)) "propagates through chain" [ D.TInt ] (List.assoc "a" types)

let test_infer_from_facts () =
  (* facts type their predicate, e.g. magic seeds *)
  let types = infer_ok [ "seed(john, 3)."; "use(X, N) :- seed(X, N)." ] in
  Alcotest.(check (list ty)) "fact types" [ D.TStr; D.TInt ] (List.assoc "seed" types);
  Alcotest.(check (list ty)) "used downstream" [ D.TStr; D.TInt ] (List.assoc "use" types)

let test_infer_conflict_between_rules () =
  let e = infer_err [ "p(X) :- num(X)."; "p(X) :- par(X, Y)." ] in
  Alcotest.(check bool) "mentions conflict" true (String.length e > 0)

let test_infer_conflict_within_rule () =
  let e = infer_err [ "p(X) :- num(X), age(X, Y)." ] in
  Alcotest.(check bool) "variable used at two types" true
    (Astring.String.is_infix ~affix:"used both" e)

let test_infer_constant_mismatch () =
  let e = infer_err [ "p(X) :- age(X, banana)." ] in
  Alcotest.(check bool) "constant vs column type" true (String.length e > 0)

let test_infer_arity_mismatch () =
  let e = infer_err [ "p(X) :- par(X)." ] in
  Alcotest.(check bool) "arity" true (Astring.String.is_infix ~affix:"arity" e)

let test_infer_unknown_pred () =
  let e = infer_err [ "p(X) :- mystery(X)." ] in
  Alcotest.(check bool) "unknown" true (Astring.String.is_infix ~affix:"mystery" e)

let test_infer_pure_recursion_underdetermined () =
  let e = infer_err [ "loop(X) :- loop(X)." ] in
  Alcotest.(check bool) "undetermined" true (String.length e > 0)

let test_infer_recursion_with_exit () =
  let types = infer_ok [ "t(X, Y) :- par(X, Y)."; "t(X, Y) :- t(X, Z), t(Z, Y)." ] in
  Alcotest.(check (list ty)) "nonlinear recursion ok" [ D.TStr; D.TStr ] (List.assoc "t" types)

let test_infer_fact_conflict () =
  let e = infer_err [ "seed(1)."; "seed(a)." ] in
  Alcotest.(check bool) "conflicting fact types" true (String.length e > 0)

(* ---------------- partial inference (the Stored D/KB update path) -------- *)

let partial texts = T.infer_partial ~base:base_env ~rules:(rules texts)

let test_partial_forward_reference () =
  (* a predicate defined only by a later batch is omitted, not an error *)
  match partial [ "p(X) :- future(X)."; "q(X, Y) :- par(X, Y)." ] with
  | Error e -> Alcotest.fail e
  | Ok types ->
      Alcotest.(check bool) "p omitted" true (not (List.mem_assoc "p" types));
      Alcotest.(check (list ty)) "q typed" [ D.TStr; D.TStr ] (List.assoc "q" types)

let test_partial_chain_through_unknown () =
  (* undeterminedness propagates: r depends on p depends on the future *)
  match partial [ "r(X) :- p(X)."; "p(X) :- future(X)." ] with
  | Error e -> Alcotest.fail e
  | Ok types -> Alcotest.(check bool) "both omitted" true (types = [])

let test_partial_pure_recursion () =
  match partial [ "loop(X) :- loop(X)." ] with
  | Error e -> Alcotest.fail e
  | Ok types -> Alcotest.(check bool) "omitted" true (not (List.mem_assoc "loop" types))

let test_partial_hard_var_conflict () =
  (* a variable typed both int and str fails even in lenient mode *)
  match partial [ "p(X) :- num(X), par(X, _Y)." ] with
  | Ok _ -> Alcotest.fail "expected a hard type conflict"
  | Error e -> Alcotest.(check bool) "nonempty" true (String.length e > 0)

let test_partial_rule_conflict () =
  match partial [ "p(X) :- num(X)."; "p(X) :- par(X, _Y)." ] with
  | Ok _ -> Alcotest.fail "expected conflicting rule heads to fail"
  | Error e -> Alcotest.(check bool) "nonempty" true (String.length e > 0)

let test_partial_arity_conflict () =
  match partial [ "p(X) :- par(X)." ] with
  | Ok _ -> Alcotest.fail "expected an arity error"
  | Error e -> Alcotest.(check bool) "mentions arity" true
      (Astring.String.is_infix ~affix:"arity" e)

let () =
  Alcotest.run "typecheck"
    [
      ("safety", [ Alcotest.test_case "safety conditions" `Quick test_safety ]);
      ("coverage", [ Alcotest.test_case "check_defined" `Quick test_check_defined ]);
      ( "inference",
        [
          Alcotest.test_case "basic" `Quick test_infer_basic;
          Alcotest.test_case "mixed columns" `Quick test_infer_mixed_columns;
          Alcotest.test_case "head constants" `Quick test_infer_constants;
          Alcotest.test_case "through chains" `Quick test_infer_through_chain;
          Alcotest.test_case "from facts" `Quick test_infer_from_facts;
          Alcotest.test_case "rule conflict" `Quick test_infer_conflict_between_rules;
          Alcotest.test_case "variable conflict" `Quick test_infer_conflict_within_rule;
          Alcotest.test_case "constant mismatch" `Quick test_infer_constant_mismatch;
          Alcotest.test_case "arity mismatch" `Quick test_infer_arity_mismatch;
          Alcotest.test_case "unknown predicate" `Quick test_infer_unknown_pred;
          Alcotest.test_case "pure recursion" `Quick test_infer_pure_recursion_underdetermined;
          Alcotest.test_case "recursion with exit" `Quick test_infer_recursion_with_exit;
          Alcotest.test_case "fact conflicts" `Quick test_infer_fact_conflict;
        ] );
      ( "partial inference",
        [
          Alcotest.test_case "forward reference" `Quick test_partial_forward_reference;
          Alcotest.test_case "chain through unknown" `Quick test_partial_chain_through_unknown;
          Alcotest.test_case "pure recursion" `Quick test_partial_pure_recursion;
          Alcotest.test_case "hard variable conflict" `Quick test_partial_hard_var_conflict;
          Alcotest.test_case "rule conflict" `Quick test_partial_rule_conflict;
          Alcotest.test_case "arity conflict" `Quick test_partial_arity_conflict;
        ] );
    ]
