(* Tests for the §4.3 Stored D/KB update algorithm — above all the key
   invariant: however updates are batched, the incrementally-maintained
   [reachablepreds] always equals the transitive closure of the PCG of
   the full stored rule set. *)

module Session = Core.Session
module SD = Core.Stored_dkb
module P = Datalog.Parser
module D = Rdbms.Datatype

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let fresh_session () =
  let s = Session.create () in
  ok (Session.define_base s "b0" [ ("x", D.TInt); ("y", D.TInt) ] ());
  s

let push_rules s texts =
  List.iter (fun t -> ok (Session.add_rule s t)) texts;
  let r = ok (Session.update_stored s ~clear:true ()) in
  r

(* ground truth: recompute the closure from all stored rules *)
let expected_closure stored =
  let pcg = Datalog.Pcg.build (SD.stored_rules stored) in
  List.map
    (fun p -> (p, List.sort compare (Datalog.Pcg.reachable_from pcg [ p ])))
    (List.sort compare (Datalog.Pcg.predicates pcg))

let actual_closure stored preds =
  List.map (fun p -> (p, List.sort compare (SD.reachable_of stored p))) preds

let check_invariant s =
  let stored = Session.stored s in
  let expected = expected_closure stored in
  let actual = actual_closure stored (List.map fst expected) in
  Alcotest.(check (list (pair string (list string)))) "reachablepreds = TC of stored PCG" expected
    actual

let test_single_batch () =
  let s = fresh_session () in
  let r = push_rules s [ "a(X, Y) :- m(X, Y)."; "m(X, Y) :- b0(X, Y)." ] in
  Alcotest.(check int) "stored 2" 2 r.Core.Update.rules_stored;
  check_invariant s;
  match SD.reachable_of (Session.stored s) "a" |> List.sort compare with
  | [ "b0"; "m" ] -> ()
  | other -> Alcotest.fail ("a reaches: " ^ String.concat "," other)

let test_incremental_extension_below () =
  (* second batch adds a layer below an existing pred: upstream closures
     must be refreshed *)
  let s = fresh_session () in
  ignore (push_rules s [ "a(X, Y) :- m(X, Y)."; "m(X, Y) :- b0(X, Y)." ]);
  ignore (push_rules s [ "m(X, Y) :- deep(X, Y)."; "deep(X, Y) :- b0(Y, X)." ]);
  check_invariant s;
  let reach_a = SD.reachable_of (Session.stored s) "a" |> List.sort compare in
  Alcotest.(check (list string)) "a sees the new layer" [ "b0"; "deep"; "m" ] reach_a

let test_incremental_new_root () =
  let s = fresh_session () in
  ignore (push_rules s [ "a(X, Y) :- m(X, Y)."; "m(X, Y) :- b0(X, Y)." ]);
  let r = push_rules s [ "top(X, Y) :- a(X, Y)." ] in
  (* only the new root's closure is recomputed *)
  Alcotest.(check int) "one affected pred" 1 r.Core.Update.affected_preds;
  Alcotest.(check (list (pair string int)))
    "per-head perturbation counts" [ ("top", 1) ] r.Core.Update.affected_by;
  check_invariant s

let test_recursive_rules () =
  let s = fresh_session () in
  ignore
    (push_rules s [ "t(X, Y) :- b0(X, Y)."; "t(X, Y) :- b0(X, Z), t(Z, Y)." ]);
  check_invariant s;
  (* t reaches itself through the recursion *)
  Alcotest.(check bool) "t in its own closure" true
    (List.mem "t" (SD.reachable_of (Session.stored s) "t"))

let test_mutual_recursion_across_batches () =
  let s = fresh_session () in
  ignore (push_rules s [ "p(X, Y) :- b0(X, Y)."; "p(X, Y) :- b0(X, Z), q(Z, Y)." ]);
  (* q arrives later and closes the cycle p -> q -> p *)
  (match Session.add_rule s "q(X, Y) :- p(X, Y)." with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (ok (Session.update_stored s ~clear:true ()));
  check_invariant s;
  Alcotest.(check bool) "p reaches p" true
    (List.mem "p" (SD.reachable_of (Session.stored s) "p"))

let test_update_without_compiled_storage () =
  let s = fresh_session () in
  List.iter (fun t -> ok (Session.add_rule s t)) [ "a(X, Y) :- b0(X, Y)." ];
  let r = ok (Session.update_stored s ~compiled_storage:false ~clear:true ()) in
  Alcotest.(check int) "no closure written" 0 r.Core.Update.tc_edges;
  Alcotest.(check int) "source stored" 1 r.Core.Update.rules_stored;
  Alcotest.(check (list string)) "reachablepreds untouched" []
    (SD.reachable_of (Session.stored s) "a");
  Alcotest.(check int) "rulesource written" 1 (SD.rule_count (Session.stored s))

let test_empty_workspace_rejected () =
  let s = fresh_session () in
  Alcotest.(check bool) "error" true (Result.is_error (Session.update_stored s ()))

let test_type_error_blocks_update () =
  let s = fresh_session () in
  (* a hard type conflict: X is an integer via b0 and a string via lbl *)
  ok (Session.define_base s "lbl" [ ("l", D.TStr) ] ());
  ok (Session.add_rule s "a(X) :- b0(X, Y), lbl(X).");
  Alcotest.(check bool) "type conflict fails typecheck" true
    (Result.is_error (Session.update_stored s ()));
  (* forward references are tolerated (checked again at query time) *)
  let s2 = fresh_session () in
  ok (Session.add_rule s2 "a(X) :- b0(X, Y), mystery(X).");
  Alcotest.(check bool) "forward reference tolerated" true
    (Result.is_ok (Session.update_stored s2 ()))

let test_dictionary_updated () =
  let s = fresh_session () in
  ignore (push_rules s [ "a(X, Y) :- b0(X, Y)." ]);
  match SD.derived_types (Session.stored s) "a" with
  | Some [ D.TInt; D.TInt ] -> ()
  | _ -> Alcotest.fail "idb dictionary not updated"

(* property: random batched updates preserve the invariant *)
let prop_batched_updates =
  let pred i = Printf.sprintf "p%d" i in
  let gen =
    (* a list of batches; each batch is a list of (head, body1, body2)
       index triples over a pool of 6 predicates + base *)
    QCheck2.Gen.(
      list_size (int_range 1 4)
        (list_size (int_range 1 4) (triple (int_bound 5) (int_bound 6) (int_bound 6))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"incremental TC = full TC after random update batches" gen
       (fun batches ->
         let s = fresh_session () in
         let body i = if i = 6 then "b0" else pred i in
         List.iter
           (fun batch ->
             List.iter
               (fun (h, b1, b2) ->
                 match
                   Session.add_rule s
                     (Printf.sprintf "%s(X, Y) :- %s(X, Z), %s(Z, Y)." (pred h) (body b1)
                        (body b2))
                 with
                 | Ok () -> ()
                 | Error _ -> ())
               batch;
             (* some batches may fail type checking (e.g. undefined preds);
                that must leave the invariant intact *)
             ignore (Session.update_stored s ~clear:true ()))
           batches;
         let stored = Session.stored s in
         expected_closure stored = actual_closure stored (List.map fst (expected_closure stored))))

let () =
  Alcotest.run "update"
    [
      ( "algorithm",
        [
          Alcotest.test_case "single batch" `Quick test_single_batch;
          Alcotest.test_case "extension below" `Quick test_incremental_extension_below;
          Alcotest.test_case "new root" `Quick test_incremental_new_root;
          Alcotest.test_case "recursive rules" `Quick test_recursive_rules;
          Alcotest.test_case "mutual recursion across batches" `Quick
            test_mutual_recursion_across_batches;
          Alcotest.test_case "source-only mode" `Quick test_update_without_compiled_storage;
          Alcotest.test_case "empty workspace" `Quick test_empty_workspace_rejected;
          Alcotest.test_case "type errors block" `Quick test_type_error_blocks_update;
          Alcotest.test_case "dictionary updated" `Quick test_dictionary_updated;
        ] );
      ("properties", [ prop_batched_updates ]);
    ]
