(* Transactions, the write-ahead log, and crash recovery.

   The fault-injection matrix uses Wal.set_crash_after to kill the log at
   every record boundary and mid-record, then checks that recovery
   reproduces exactly the committed prefix (Persist.dump equality against
   an engine that ran only those statements). *)

module E = Rdbms.Engine
module W = Rdbms.Wal
module P = Rdbms.Persist
module Session = Core.Session
module V = Rdbms.Value
module D = Rdbms.Datatype

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let tmpfile name =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  (try Sys.remove path with Sys_error _ -> ());
  path

let count e table = E.scalar_int e (Printf.sprintf "SELECT COUNT(*) FROM %s" table)

(* ------------------------------------------------------------------ *)
(* Transactions *)

let seeded () =
  let e = E.create () in
  ignore (E.exec e "CREATE TABLE t (a integer, b char)");
  ignore (E.exec e "CREATE INDEX idx_t_a ON t (a)");
  ignore (E.exec e "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')");
  e

let test_rollback_dml () =
  let e = seeded () in
  (* rollback is a logical undo: the row set comes back (physical
     insertion order may differ, so compare sorted) *)
  let snapshot e = E.query e "SELECT a, b FROM t ORDER BY 1" in
  let before = snapshot e in
  ignore (E.exec e "BEGIN");
  ignore (E.exec e "INSERT INTO t VALUES (4, 'w')");
  ignore (E.exec e "DELETE FROM t WHERE a = 1");
  ignore (E.exec e "UPDATE t SET b = 'q' WHERE a = 2");
  ignore (E.exec e "TRUNCATE TABLE t");
  Alcotest.(check int) "txn sees its own writes" 0 (count e "t");
  ignore (E.exec e "ROLLBACK");
  Alcotest.(check bool) "rows identical after rollback" true (before = snapshot e);
  Alcotest.(check bool) "index still answers" true
    (Astring.String.is_infix ~affix:"IndexScan" (E.explain e "SELECT b FROM t WHERE a = 2"));
  Alcotest.(check int) "rollback counted" 1 (E.stats e).Rdbms.Stats.txns_rolled_back

let test_rollback_ddl () =
  let e = seeded () in
  let before = P.dump e in
  ignore (E.exec e "BEGIN");
  ignore (E.exec e "CREATE TABLE fresh (z integer)");
  ignore (E.exec e "INSERT INTO fresh VALUES (9)");
  ignore (E.exec e "DROP TABLE t");
  ignore (E.exec e "ROLLBACK");
  Alcotest.(check string) "created table gone, dropped table back" before (P.dump e);
  (* the recreated table's index is live again, not just cataloged *)
  Alcotest.(check bool) "restored index used" true
    (Astring.String.is_infix ~affix:"IndexScan" (E.explain e "SELECT b FROM t WHERE a = 2"))

let test_rollback_drop_index () =
  let e = seeded () in
  let before = P.dump e in
  ignore (E.exec e "BEGIN");
  ignore (E.exec e "DROP INDEX idx_t_a");
  ignore (E.exec e "CREATE INDEX idx_t_b ON t (b)");
  ignore (E.exec e "ROLLBACK");
  Alcotest.(check string) "index set restored" before (P.dump e)

let test_commit () =
  let e = seeded () in
  ignore (E.exec e "BEGIN");
  ignore (E.exec e "INSERT INTO t VALUES (4, 'w')");
  ignore (E.exec e "COMMIT");
  Alcotest.(check int) "committed rows stay" 4 (count e "t");
  Alcotest.(check int) "commit counted" 1 (E.stats e).Rdbms.Stats.txns_committed

let test_txn_errors () =
  let e = seeded () in
  let fails sql = Alcotest.(check bool) sql true
    (match E.exec e sql with _ -> false | exception E.Sql_error _ -> true)
  in
  fails "COMMIT";
  fails "ROLLBACK";
  ignore (E.exec e "BEGIN");
  fails "BEGIN";
  ignore (E.exec e "ROLLBACK")

let test_statement_atomicity () =
  (* a multi-row INSERT that dies halfway must undo its partial effects,
     inside and outside an explicit transaction *)
  let check_mode in_txn =
    let e = seeded () in
    if in_txn then ignore (E.exec e "BEGIN");
    let before = count e "t" in
    (match E.exec e "INSERT INTO t VALUES (7, 'ok'), ('bad', 8)" with
    | _ -> Alcotest.fail "expected type error"
    | exception E.Sql_error _ -> ());
    Alcotest.(check int)
      (if in_txn then "no partial rows (txn)" else "no partial rows (autocommit)")
      before (count e "t");
    if in_txn then ignore (E.exec e "ROLLBACK")
  in
  check_mode false;
  check_mode true

(* ------------------------------------------------------------------ *)
(* WAL basics *)

(* every statement here changes something, so each becomes one record *)
let script =
  [
    "CREATE TABLE t (a integer, b char)";
    "INSERT INTO t VALUES (1, 'x'), (2, 'y')";
    "CREATE INDEX idx_t_a ON t (a)";
    "INSERT INTO t VALUES (3, 'z')";
    "DELETE FROM t WHERE a = 1";
    "UPDATE t SET b = 'w' WHERE a = 2";
  ]

let prefix_dump k =
  let e = E.create () in
  List.iteri (fun i sql -> if i < k then ignore (E.exec e sql)) script;
  P.dump e

let missing_db = "/nonexistent/dkb_wal_test.db"

let test_wal_roundtrip () =
  let wal = tmpfile "dkb_wal_rt.wal" in
  let e = E.create () in
  let w = W.open_log wal in
  W.attach w e;
  List.iter (fun sql -> ignore (E.exec e sql)) script;
  (* SELECTs and no-effect statements produce no records *)
  ignore (E.exec e "SELECT a FROM t");
  ignore (E.exec e "DELETE FROM t WHERE a = 99");
  ignore (E.exec e "INSERT INTO t VALUES (3, 'z')" (* duplicate: Affected 0 *));
  Alcotest.(check int) "one record per effective statement" (List.length script)
    (List.length (W.read_records wal));
  Alcotest.(check int) "stats count records" (List.length script)
    (E.stats e).Rdbms.Stats.wal_records;
  let e2, replayed = ok (W.recover ~db:missing_db ~wal ()) in
  Alcotest.(check int) "all records replayed" (List.length script) replayed;
  Alcotest.(check string) "recovered dump matches" (P.dump e) (P.dump e2);
  Alcotest.(check int) "recovery counted" 1 (E.stats e2).Rdbms.Stats.recoveries;
  W.close w;
  Sys.remove wal

let test_wal_txn_record () =
  (* one transaction = one record; a rolled-back transaction = none *)
  let wal = tmpfile "dkb_wal_txn.wal" in
  let e = E.create () in
  let w = W.open_log wal in
  W.attach w e;
  ignore (E.exec e "CREATE TABLE t (a integer)");
  ignore (E.exec e "BEGIN");
  ignore (E.exec e "INSERT INTO t VALUES (1)");
  ignore (E.exec e "INSERT INTO t VALUES (2)");
  ignore (E.exec e "COMMIT");
  ignore (E.exec e "BEGIN");
  ignore (E.exec e "INSERT INTO t VALUES (3)");
  ignore (E.exec e "ROLLBACK");
  Alcotest.(check int) "DDL + one committed txn" 2 (List.length (W.read_records wal));
  let e2, _ = ok (W.recover ~db:missing_db ~wal ()) in
  Alcotest.(check string) "rolled-back txn invisible after recovery" (P.dump e) (P.dump e2);
  W.close w;
  Sys.remove wal

(* ------------------------------------------------------------------ *)
(* Fault-injection matrix *)

let wal_file_length path =
  In_channel.with_open_bin path (fun ic -> Int64.to_int (In_channel.length ic))

(* Framed sizes of the records a crash-free run produces. *)
let record_sizes () =
  let wal = tmpfile "dkb_wal_sizes.wal" in
  let e = E.create () in
  let w = W.open_log wal in
  W.attach w e;
  List.iter (fun sql -> ignore (E.exec e sql)) script;
  W.close w;
  let sizes = List.map (fun payload -> 12 + String.length payload) (W.read_records wal) in
  Sys.remove wal;
  sizes

let run_until_crash ~budget =
  let wal = tmpfile "dkb_wal_crash.wal" in
  let e = E.create () in
  let w = W.open_log wal in
  W.attach w e;
  W.set_crash_after w (Some budget);
  List.iter
    (fun sql -> match E.exec e sql with _ -> () | exception W.Crashed -> ())
    script;
  wal

let test_crash_matrix () =
  let sizes = record_sizes () in
  Alcotest.(check int) "size probe" (List.length script) (List.length sizes);
  (* prefix byte offsets: crash exactly between record k and k+1, and
     mid-record (header split and payload split) inside record k+1 *)
  let rec prefixes acc total = function
    | [] -> List.rev ((total, List.length sizes) :: acc)
    | s :: rest -> prefixes ((total, List.length acc) :: acc) (total + s) rest
  in
  let boundaries = prefixes [] 0 sizes in
  List.iter
    (fun (offset, k) ->
      let budgets =
        (Printf.sprintf "between records (k=%d)" k, offset, k)
        ::
        (if k < List.length sizes then
           [
             (Printf.sprintf "mid-header (k=%d)" k, offset + 5, k);
             (Printf.sprintf "mid-payload (k=%d)" k, offset + 15, k);
           ]
         else [])
      in
      List.iter
        (fun (label, budget, expect) ->
          let wal = run_until_crash ~budget in
          let e2, replayed = ok (W.recover ~db:missing_db ~wal ()) in
          (* whatever prefix survived, the recovered engine must satisfy
             every structural invariant (indexes, tuple tables, stats) *)
          (match E.check_invariants e2 with
          | [] -> ()
          | vs ->
              Alcotest.fail
                (label ^ ": invariants violated after recovery: "
                ^ String.concat "; " (List.map Rdbms.Invariants.violation_to_string vs)));
          Alcotest.(check int) (label ^ ": replay count") expect replayed;
          Alcotest.(check string)
            (label ^ ": exactly the committed prefix")
            (prefix_dump expect) (P.dump e2);
          (* the torn tail is physically gone: the file is back to the
             last record boundary *)
          Alcotest.(check int)
            (label ^ ": tail truncated")
            (List.fold_left ( + ) 0 (List.filteri (fun i _ -> i < expect) sizes))
            (wal_file_length wal);
          (* recovery is idempotent *)
          let e3, replayed' = ok (W.recover ~db:missing_db ~wal ()) in
          Alcotest.(check int) (label ^ ": double recovery count") expect replayed';
          Alcotest.(check string)
            (label ^ ": double recovery dump")
            (P.dump e2) (P.dump e3);
          Sys.remove wal)
        budgets)
    boundaries

let test_garbage_tail () =
  (* a tail that is garbage rather than a torn record is also dropped *)
  let wal = tmpfile "dkb_wal_garbage.wal" in
  let e = E.create () in
  let w = W.open_log wal in
  W.attach w e;
  List.iter (fun sql -> ignore (E.exec e sql)) script;
  W.close w;
  let len = wal_file_length wal in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 wal in
  output_string oc "XXnot a record";
  close_out oc;
  let e2, replayed = ok (W.recover ~db:missing_db ~wal ()) in
  Alcotest.(check int) "garbage ignored" (List.length script) replayed;
  Alcotest.(check string) "state intact" (P.dump e) (P.dump e2);
  Alcotest.(check int) "garbage truncated" len (wal_file_length wal);
  Sys.remove wal

let test_checkpoint () =
  let wal = tmpfile "dkb_wal_ckpt.wal" in
  let db = tmpfile "dkb_wal_ckpt.db" in
  let e = E.create () in
  let w = W.open_log wal in
  W.attach w e;
  ignore (E.exec e "CREATE TABLE t (a integer)");
  ignore (E.exec e "INSERT INTO t VALUES (1), (2)");
  ignore (E.exec e "BEGIN");
  (match W.checkpoint w e ~db with
  | Ok () -> Alcotest.fail "checkpoint inside a transaction must fail"
  | Error _ -> ());
  ignore (E.exec e "ROLLBACK");
  ok (W.checkpoint w e ~db);
  Alcotest.(check int) "log truncated by checkpoint" 0 (List.length (W.read_records wal));
  ignore (E.exec e "INSERT INTO t VALUES (3)");
  Alcotest.(check int) "post-checkpoint work logged" 1 (List.length (W.read_records wal));
  let e2, replayed = ok (W.recover ~db ~wal ()) in
  Alcotest.(check int) "only the delta replays" 1 replayed;
  Alcotest.(check string) "checkpoint + delta = live state" (P.dump e) (P.dump e2);
  W.close w;
  Sys.remove wal;
  Sys.remove db

(* ------------------------------------------------------------------ *)
(* Session-level: atomic Stored D/KB updates, query logging suppression *)

let family_session () =
  let s = Session.create () in
  ok (Session.define_base s "parent" [ ("p", D.TStr); ("c", D.TStr) ] ~indexes:[ "p" ] ());
  ignore
    (ok
       (Session.add_facts s "parent"
          [ [ V.Str "john"; V.Str "mary" ]; [ V.Str "mary"; V.Str "sue" ] ]));
  s

let test_aborted_update_atomic () =
  let s = family_session () in
  ok (Session.load_rules s Workload.Queries.ancestor_rules);
  ignore (ok (Session.update_stored s ~clear:true ()));
  let engine = Session.engine s in
  let before = P.dump engine in
  (* ill-typed rule: comparing the char column against an integer *)
  ok (Session.add_rule s "bad(X) :- parent(X, Y), ancestor(Y, 7).");
  (match Session.update_stored s () with
  | Ok _ -> Alcotest.fail "ill-typed update must be rejected"
  | Error _ -> ());
  Alcotest.(check string) "rulesource/reachablepreds untouched" before (P.dump engine)

let test_update_rollback_via_txn () =
  (* an update that joins a caller transaction is undone by its rollback *)
  let s = family_session () in
  let engine = Session.engine s in
  let before = P.dump engine in
  E.begin_txn engine;
  ok (Session.load_rules s Workload.Queries.ancestor_rules);
  ignore (ok (Session.update_stored s ()));
  Alcotest.(check bool) "rules were stored" true
    (Core.Stored_dkb.rule_count (Session.stored s) > 0);
  E.rollback_txn engine;
  Alcotest.(check string) "caller rollback undoes the whole update" before (P.dump engine)

let test_session_recovery () =
  let wal = tmpfile "dkb_wal_sess.wal" in
  let db = tmpfile "dkb_wal_sess.db" in
  (try Sys.remove db with Sys_error _ -> ());
  let s = Session.create () in
  ok (Session.attach_wal s wal);
  ok (Session.define_base s "parent" [ ("p", D.TStr); ("c", D.TStr) ] ~indexes:[ "p" ] ());
  ignore
    (ok
       (Session.add_facts s "parent"
          [ [ V.Str "john"; V.Str "mary" ]; [ V.Str "mary"; V.Str "sue" ] ]));
  ok (Session.load_rules s Workload.Queries.ancestor_rules);
  ignore (ok (Session.update_stored s ()));
  let logged = (Session.db_stats s).Rdbms.Stats.wal_records in
  (* query evaluation (temp-table churn) must not add records *)
  let answer = ok (Session.query s "ancestor(john, W)") in
  let _, rows = Session.answer_rows answer in
  Alcotest.(check int) "query answers" 2 (List.length rows);
  Alcotest.(check int) "queries add no WAL records" logged
    (Session.db_stats s).Rdbms.Stats.wal_records;
  (* crash now (no checkpoint was ever taken): recover from the log alone *)
  let s2, _ = ok (Session.recover ~db ~wal ()) in
  let a2 = ok (Session.query s2 "ancestor(john, W)") in
  let _, rows2 = Session.answer_rows a2 in
  Alcotest.(check int) "recovered session answers the query" 2 (List.length rows2);
  (* checkpoint, keep writing, recover again: checkpoint + delta *)
  ok (Session.checkpoint s2 ~db);
  ignore (ok (Session.add_fact s2 "parent" [ V.Str "sue"; V.Str "ann" ]));
  let s3, _ = ok (Session.recover ~db ~wal ()) in
  Alcotest.(check string) "checkpoint + delta = live state"
    (P.dump (Session.engine s2)) (P.dump (Session.engine s3));
  Sys.remove wal;
  Sys.remove db

(* ------------------------------------------------------------------ *)
(* Paged storage x durability *)

let tmpdir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Unix.mkdir dir 0o755;
  dir

exception Crash_point

(* Crash in the checkpoint window between the dirty-page writeback and
   the WAL truncate: the dump and the heap files are written, the log
   still holds every record. Recovery must produce the identical engine
   whether or not the truncate happened. *)
let test_checkpoint_crash_window () =
  let wal = tmpfile "dkb_wal_storage.wal" in
  let db = tmpfile "dkb_wal_storage.db" in
  let dir = tmpdir "dkb_wal_storage_heaps" in
  let e = E.create () in
  E.attach_storage e ~dir ();
  let w = W.open_log wal in
  W.attach w e;
  ignore (E.exec e "CREATE TABLE t (a integer, b char)");
  ignore (E.exec e "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')");
  ignore (E.exec e "DELETE FROM t WHERE a = 2");
  let live = P.dump e in
  (match W.checkpoint ~on_flush:(fun () -> raise Crash_point) w e ~db with
  | exception Crash_point -> ()
  | Ok () -> Alcotest.fail "fault injection did not fire"
  | Error msg -> Alcotest.fail msg);
  (* dirty pages reached the heap files before the "crash" *)
  List.iter
    (fun (_, h) -> Alcotest.(check (list string)) "heap consistent" [] (Rdbms.Heap.check h))
    (E.storage_heaps e);
  Alcotest.(check bool) "log survived the crash" true (List.length (W.read_records wal) > 0);
  (* the crashed process is gone; recover over the same directory *)
  E.close_storage e;
  W.close w;
  let prepare e2 = E.attach_storage e2 ~dir ~mode:`Overwrite () in
  let e2, _ = ok (W.recover ~prepare ~db ~wal ()) in
  Alcotest.(check string) "recovered state identical" live (P.dump e2);
  Alcotest.(check (list string)) "recovered catalog clean" []
    (List.map Rdbms.Invariants.violation_to_string
       (Rdbms.Invariants.check_catalog (E.catalog e2)));
  Alcotest.(check int) "recovered heap holds the live rows" 2
    (E.scalar_int e2 "SELECT COUNT(*) FROM t");
  (* recovering again from the already-truncated-tail state is a no-op *)
  let e3, _ = ok (W.recover ~prepare:(fun _ -> ()) ~db ~wal ()) in
  Alcotest.(check string) "recovery is idempotent" live (P.dump e3);
  E.close_storage e2;
  Sys.remove wal;
  Sys.remove db

(* A completed checkpoint followed by more work, then recovery with the
   heap files left as the crash left them (possibly ahead of the dump):
   replay must still land on the live state. *)
let test_storage_recovery_checkpoint_delta () =
  let wal = tmpfile "dkb_wal_storage2.wal" in
  let db = tmpfile "dkb_wal_storage2.db" in
  let dir = tmpdir "dkb_wal_storage2_heaps" in
  (try Sys.remove db with Sys_error _ -> ());
  let s = Session.create () in
  ok (Session.attach_storage s ~dir ());
  ok (Session.attach_wal s wal);
  ok (Session.define_base s "parent" [ ("p", D.TStr); ("c", D.TStr) ] ~indexes:[ "p" ] ());
  ignore
    (ok
       (Session.add_facts s "parent"
          [ [ V.Str "john"; V.Str "mary" ]; [ V.Str "mary"; V.Str "sue" ] ]));
  ok (Session.checkpoint s ~db);
  (* post-checkpoint work: logged, and partially paged out to the heaps *)
  ignore (ok (Session.add_fact s "parent" [ V.Str "sue"; V.Str "ann" ]));
  E.flush_storage (Session.engine s);
  let live = P.dump (Session.engine s) in
  (* "crash": drop the session without another checkpoint *)
  E.close_storage (Session.engine s);
  let s2, replayed = ok (Session.recover ~storage:dir ~db ~wal ()) in
  Alcotest.(check bool) "the delta replayed" true (replayed > 0);
  Alcotest.(check string) "checkpoint + delta = live state" live (P.dump (Session.engine s2));
  let a = ok (Session.query s2 "parent(sue, W)") in
  let _, rows = Session.answer_rows a in
  Alcotest.(check int) "replayed fact visible through the heap" 1 (List.length rows);
  Alcotest.(check (list string)) "recovered engine audits clean" []
    (List.map Rdbms.Invariants.violation_to_string
       (E.check_invariants (Session.engine s2)));
  E.close_storage (Session.engine s2);
  Sys.remove wal;
  Sys.remove db

let () =
  Alcotest.run "wal"
    [
      ( "transactions",
        [
          Alcotest.test_case "rollback DML" `Quick test_rollback_dml;
          Alcotest.test_case "rollback DDL" `Quick test_rollback_ddl;
          Alcotest.test_case "rollback index DDL" `Quick test_rollback_drop_index;
          Alcotest.test_case "commit" `Quick test_commit;
          Alcotest.test_case "control errors" `Quick test_txn_errors;
          Alcotest.test_case "statement atomicity" `Quick test_statement_atomicity;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "txn granularity" `Quick test_wal_txn_record;
          Alcotest.test_case "crash matrix" `Quick test_crash_matrix;
          Alcotest.test_case "garbage tail" `Quick test_garbage_tail;
          Alcotest.test_case "checkpoint" `Quick test_checkpoint;
        ] );
      ( "session",
        [
          Alcotest.test_case "aborted update atomic" `Quick test_aborted_update_atomic;
          Alcotest.test_case "update in caller txn" `Quick test_update_rollback_via_txn;
          Alcotest.test_case "recovery" `Quick test_session_recovery;
        ] );
      ( "paged storage",
        [
          Alcotest.test_case "crash between flush and truncate" `Quick
            test_checkpoint_crash_window;
          Alcotest.test_case "checkpoint + delta over heaps" `Quick
            test_storage_recovery_checkpoint_delta;
        ] );
    ]
